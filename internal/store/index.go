package store

import "container/list"

// diskIndex tracks the valid entry files one Store knows about, in
// recency order, with their on-disk sizes — the bookkeeping behind the
// disk budget. It is not safe for concurrent use on its own; the
// Store's mutex guards it.
//
// The index is this Store's *view* of the directory, not necessarily
// the whole truth: a second Store sharing the directory writes files
// this one has never seen. Entries enter the view at Open's sweep, on
// Put, and on any verified read (Get/GetRaw adopt entries another
// writer left behind); Compact reconciles the view against the
// directory wholesale.
type diskIndex struct {
	entries map[string]*list.Element
	order   *list.List // front = most recently used
	bytes   int64
}

type diskEntry struct {
	path string
	size int64
}

func newDiskIndex() *diskIndex {
	return &diskIndex{entries: map[string]*list.Element{}, order: list.New()}
}

// put inserts path as most recently used (or refreshes its recency and
// size), returning the byte delta and whether the path was new.
func (d *diskIndex) put(path string, size int64) (delta int64, inserted bool) {
	if el, ok := d.entries[path]; ok {
		e := el.Value.(*diskEntry)
		delta = size - e.size
		e.size = size
		d.bytes += delta
		d.order.MoveToFront(el)
		return delta, false
	}
	d.entries[path] = d.order.PushFront(&diskEntry{path: path, size: size})
	d.bytes += size
	return size, true
}

// putCold inserts path at the least-recently-used end — used by
// Compact for entries discovered on disk with no recency history, so
// they are the first budget victims.
func (d *diskIndex) putCold(path string, size int64) {
	if _, ok := d.entries[path]; ok {
		return
	}
	d.entries[path] = d.order.PushBack(&diskEntry{path: path, size: size})
	d.bytes += size
}

// touch refreshes recency if path is tracked; unknown paths are left
// alone (adoption is put's job, with a size in hand).
func (d *diskIndex) touch(path string) {
	if el, ok := d.entries[path]; ok {
		d.order.MoveToFront(el)
	}
}

// remove drops path from the index, returning its recorded size.
func (d *diskIndex) remove(path string) (size int64, ok bool) {
	el, found := d.entries[path]
	if !found {
		return 0, false
	}
	e := el.Value.(*diskEntry)
	d.order.Remove(el)
	delete(d.entries, path)
	d.bytes -= e.size
	return e.size, true
}

// victim returns the least-recently-used entry without removing it.
func (d *diskIndex) victim() (path string, size int64, ok bool) {
	back := d.order.Back()
	if back == nil {
		return "", 0, false
	}
	e := back.Value.(*diskEntry)
	return e.path, e.size, true
}

// has reports whether path is tracked.
func (d *diskIndex) has(path string) bool {
	_, ok := d.entries[path]
	return ok
}

// paths returns every tracked path (unordered).
func (d *diskIndex) paths() []string {
	out := make([]string, 0, len(d.entries))
	for p := range d.entries {
		out = append(out, p)
	}
	return out
}

// len reports the tracked entry count.
func (d *diskIndex) len() int { return len(d.entries) }
