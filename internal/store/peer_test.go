package store

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// storeHandler mimics the rcserve /v1/store routes over a backing
// Store, using the same GetRaw/PutRaw primitives the server uses — so
// these tests exercise both sides of the peer protocol.
func storeHandler(s *Store) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/store/{kind}/{addr}", func(w http.ResponseWriter, r *http.Request) {
		raw, ok, err := s.GetRaw(r.PathValue("kind"), r.PathValue("addr"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if !ok {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(raw)
	})
	mux.HandleFunc("PUT /v1/store/{kind}/{addr}", func(w http.ResponseWriter, r *http.Request) {
		data := make([]byte, 0, 1024)
		buf := make([]byte, 4096)
		for {
			n, err := r.Body.Read(buf)
			data = append(data, buf[:n]...)
			if err != nil {
				break
			}
		}
		if err := s.PutRaw(r.PathValue("kind"), r.PathValue("addr"), data); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	return mux
}

func newPeerFixture(t *testing.T) (*Store, *httptest.Server) {
	t.Helper()
	remote := mustOpen(t, t.TempDir(), Options{CacheEntries: -1})
	srv := httptest.NewServer(storeHandler(remote))
	t.Cleanup(srv.Close)
	return remote, srv
}

func TestPeerGetHitMissAndPut(t *testing.T) {
	remote, srv := newPeerFixture(t)
	if err := remote.Put(context.Background(), "search", "warm", []byte(`{"n":7}`)); err != nil {
		t.Fatal(err)
	}
	p, err := NewPeer(srv.URL, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != srv.URL {
		t.Fatalf("Name = %q", p.Name())
	}

	got, ok, err := p.Get(context.Background(), "search", "warm")
	if err != nil || !ok || string(got) != `{"n":7}` {
		t.Fatalf("peer hit: %q ok=%v err=%v", got, ok, err)
	}
	if _, ok, err := p.Get(context.Background(), "search", "cold"); ok || err != nil {
		t.Fatalf("peer miss: ok=%v err=%v", ok, err)
	}
	if err := p.Put(context.Background(), "job", "pushed", []byte(`{"r":"done"}`)); err != nil {
		t.Fatalf("peer put: %v", err)
	}
	if got, ok, _ := remote.Get(context.Background(), "job", "pushed"); !ok || string(got) != `{"r":"done"}` {
		t.Fatalf("pushed entry not on remote: %q ok=%v", got, ok)
	}
	st := p.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Errors != 0 || st.Puts != 1 || st.Gets != 2 {
		t.Fatalf("peer stats: %+v", st)
	}
	if st.GetSeconds <= 0 {
		t.Fatalf("GetSeconds = %v, want > 0", st.GetSeconds)
	}
}

func TestNewPeerValidation(t *testing.T) {
	for _, bad := range []string{"", "localhost:8372", "ftp://x", "   "} {
		if _, err := NewPeer(bad, 0); err == nil {
			t.Errorf("NewPeer(%q) accepted", bad)
		}
	}
	p, err := NewPeer("http://replica:8372/", 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "http://replica:8372" {
		t.Fatalf("trailing slash kept: %q", p.Name())
	}
}

// TestPeerDown: a refused connection is a counted operational error,
// never a hit, and the error carries the peer's base URL.
func TestPeerDown(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	url := srv.URL
	srv.Close()
	p, err := NewPeer(url, 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	data, ok, err := p.Get(context.Background(), "search", "k")
	if ok || data != nil {
		t.Fatalf("down peer produced a hit: %q", data)
	}
	if err == nil || !strings.Contains(err.Error(), url) {
		t.Fatalf("error %v does not identify the peer", err)
	}
	if st := p.Stats(); st.Errors != 1 || st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("peer stats: %+v", st)
	}
}

// TestPeerSlow: a peer that stalls past the client deadline is an
// error, bounded by the configured timeout — a hung replica cannot hang
// the fleet.
func TestPeerSlow(t *testing.T) {
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
	}))
	defer func() { close(release); srv.Close() }()
	p, err := NewPeer(srv.URL, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, ok, err := p.Get(context.Background(), "search", "k")
	if ok || err == nil {
		t.Fatalf("slow peer: ok=%v err=%v", ok, err)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("deadline not enforced: took %v", el)
	}
	if st := p.Stats(); st.Errors != 1 {
		t.Fatalf("peer stats: %+v", st)
	}
}

// TestPeerCorruptEnvelope: every flavor of bad envelope — garbage,
// wrong checksum, wrong identity, wrong version, oversized — is
// rejected on receipt and counted as an error.
func TestPeerCorruptEnvelope(t *testing.T) {
	warmData, _, err := encodeEnvelope("search", "k", []byte(`{"n":1}`))
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]func() []byte{
		"garbage":  func() []byte { return []byte("not json at all") },
		"bad-sum":  func() []byte { return []byte(strings.Replace(string(warmData), `{"n":1}`, `{"n":2}`, 1)) },
		"bad-key":  func() []byte { d, _, _ := encodeEnvelope("search", "other", []byte(`{"n":1}`)); return d },
		"bad-kind": func() []byte { d, _, _ := encodeEnvelope("job", "k", []byte(`{"n":1}`)); return d },
		"too-big": func() []byte {
			d, _, _ := encodeEnvelope("search", "k", []byte(`{"pad":"`+strings.Repeat("x", maxPeerEnvelope)+`"}`))
			return d
		},
	}
	for name, body := range cases {
		t.Run(name, func(t *testing.T) {
			srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				w.Header().Set("Content-Type", "application/json")
				w.Write(body())
			}))
			defer srv.Close()
			p, err := NewPeer(srv.URL, 5*time.Second)
			if err != nil {
				t.Fatal(err)
			}
			data, ok, err := p.Get(context.Background(), "search", "k")
			if ok || data != nil || err == nil {
				t.Fatalf("corrupt envelope accepted: ok=%v err=%v", ok, err)
			}
			if st := p.Stats(); st.Errors != 1 || st.Hits != 0 {
				t.Fatalf("peer stats: %+v", st)
			}
		})
	}
}

// TestPeerServerRejectsCorruptPut: the receiving side re-verifies too —
// PutRaw refuses an envelope whose checksum or address doesn't hold, so
// a confused sender cannot poison a replica's store.
func TestPeerServerRejectsCorruptPut(t *testing.T) {
	remote, srv := newPeerFixture(t)
	good, _, err := encodeEnvelope("search", "k", []byte(`{"n":1}`))
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(good), `{"n":1}`, `{"n":9}`, 1)
	req, _ := http.NewRequest(http.MethodPut,
		srv.URL+"/v1/store/search/"+addr("search", "k"), strings.NewReader(tampered))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("tampered put got status %d, want 400", resp.StatusCode)
	}
	if _, ok, _ := remote.Get(context.Background(), "search", "k"); ok {
		t.Fatal("tampered entry stored")
	}
	// Address/identity mismatch: valid envelope sent to the wrong address.
	req, _ = http.NewRequest(http.MethodPut,
		srv.URL+"/v1/store/search/"+addr("search", "elsewhere"), strings.NewReader(string(good)))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("misaddressed put got status %d, want 400", resp.StatusCode)
	}
}

// TestChainReadThroughAndHealing: a chain over (cold local, warm peer)
// serves the far hit and writes it back, so the second Get is local —
// and the healed file is byte-identical to one the local store would
// have written itself.
func TestChainReadThroughAndHealing(t *testing.T) {
	remote, srv := newPeerFixture(t)
	if err := remote.Put(context.Background(), "search", "warm", []byte(`{"n":42}`)); err != nil {
		t.Fatal(err)
	}
	local := mustOpen(t, t.TempDir(), Options{CacheEntries: -1})
	p, err := NewPeer(srv.URL, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	c := NewChain(local, p)
	if want := "chain(local," + srv.URL + ")"; c.Name() != want {
		t.Fatalf("chain name %q, want %q", c.Name(), want)
	}

	got, ok, err := c.Get(context.Background(), "search", "warm")
	if err != nil || !ok || string(got) != `{"n":42}` {
		t.Fatalf("chain read-through: %q ok=%v err=%v", got, ok, err)
	}
	if st := local.Stats(); st.Puts != 1 {
		t.Fatalf("write-back did not heal the local tier: %+v", st)
	}
	// Second Get is served locally — no new peer traffic.
	gets := p.Stats().Gets
	if _, ok, _ := c.Get(context.Background(), "search", "warm"); !ok {
		t.Fatal("healed entry lost")
	}
	if p.Stats().Gets != gets {
		t.Fatal("second Get still went to the peer")
	}
	// The healed file equals the remote's byte-for-byte.
	a := addr("search", "warm")
	lraw, ok, err := local.GetRaw("search", a)
	if err != nil || !ok {
		t.Fatalf("local GetRaw: ok=%v err=%v", ok, err)
	}
	rraw, _, _ := remote.GetRaw("search", a)
	if string(lraw) != string(rraw) {
		t.Fatal("healed entry differs from the peer's")
	}
}

// TestChainMissAndErrorPropagation: all tiers missing is a miss; a tier
// error surfaces only when nothing hits, and a later hit absorbs an
// earlier tier's failure.
func TestChainMissAndErrorPropagation(t *testing.T) {
	down := httptest.NewServer(http.NotFoundHandler())
	downURL := down.URL
	down.Close()
	deadPeer, err := NewPeer(downURL, 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	remote, srv := newPeerFixture(t)
	if err := remote.Put(context.Background(), "search", "warm", []byte(`{"n":1}`)); err != nil {
		t.Fatal(err)
	}
	livePeer, err := NewPeer(srv.URL, time.Second)
	if err != nil {
		t.Fatal(err)
	}

	// Dead tier first, warm tier second: the hit wins, no error.
	c := NewChain(deadPeer, livePeer)
	if _, ok, err := c.Get(context.Background(), "search", "warm"); !ok || err != nil {
		t.Fatalf("hit behind a dead tier: ok=%v err=%v", ok, err)
	}
	// Everything misses or fails: the first error is reported with ok=false.
	if _, ok, err := c.Get(context.Background(), "search", "nowhere"); ok || err == nil {
		t.Fatalf("want miss with the dead tier's error, got ok=%v err=%v", ok, err)
	}
	// A pure miss (no failing tier) carries no error.
	c2 := NewChain(livePeer)
	if _, ok, err := c2.Get(context.Background(), "search", "nowhere"); ok || err != nil {
		t.Fatalf("pure miss: ok=%v err=%v", ok, err)
	}
}

// TestChainDisklessPut: with a peer as tier 0 (a diskless worker), Put
// pushes results into the shared pool.
func TestChainDisklessPut(t *testing.T) {
	remote, srv := newPeerFixture(t)
	p, err := NewPeer(srv.URL, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	c := NewChain(p)
	if err := c.Put(context.Background(), "search", "k", []byte(`{"n":3}`)); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := remote.Get(context.Background(), "search", "k"); !ok {
		t.Fatal("diskless put did not reach the pool")
	}
}

func TestNewChainPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewChain() did not panic")
		}
	}()
	NewChain()
}
