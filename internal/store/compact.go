package store

import (
	"context"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"rcons/internal/obs"
)

// CompactStats reports what one Compact pass did.
type CompactStats struct {
	// QuarantineRemoved counts quarantined corpses deleted.
	QuarantineRemoved int `json:"quarantineRemoved"`
	// Entries/Bytes before and after, as reconciled against the
	// directory — Before reflects this Store's possibly drifted view,
	// After the recounted truth (post-eviction).
	EntriesBefore int64 `json:"entriesBefore"`
	EntriesAfter  int64 `json:"entriesAfter"`
	BytesBefore   int64 `json:"bytesBefore"`
	BytesAfter    int64 `json:"bytesAfter"`
	// Evicted counts entries deleted by this pass to meet the budget.
	Evicted int64 `json:"evicted"`
}

// Compact is the store's compaction pass, safe to run online (it
// briefly blocks writers) or offline (rcatlas compact):
//
//  1. quarantine debris is deleted — corpses have served their
//     diagnostic purpose once an operator decides to compact;
//  2. the entry population is recounted from the directory, healing
//     the Stats.Entries/Bytes drift that accrues when several Stores
//     share one directory (each Put only counts what its own handle
//     observed — see the package doc's single-writer note);
//  3. the byte budget is re-applied by size-aware LRU eviction.
//
// Recency survives reconciliation: entries this Store has been serving
// keep their LRU order, while entries discovered on disk (written by
// another handle) enter at the cold end — ordered among themselves by
// mtime then path, so a fleet of replicas compacting the same inputs
// evicts the same victims. Every mutation is one atomic unlink; a
// crash mid-pass leaves a valid store whose next Open re-sweeps,
// recounts and finishes the eviction.
func (s *Store) Compact(ctx context.Context) (CompactStats, error) {
	_, span := obs.StartSpan(ctx, "store.compact")
	defer span.End()
	// Taking every write-lock stripe freezes Puts/Gets mid-flight so the
	// rescan can't race a rename; stripe order is fixed, so two
	// concurrent Compacts can't deadlock each other.
	for i := range s.writeLocks {
		s.writeLocks[i].Lock()
	}
	defer func() {
		for i := range s.writeLocks {
			s.writeLocks[i].Unlock()
		}
	}()

	var cs CompactStats
	s.mu.Lock()
	cs.EntriesBefore = s.stats.Entries
	cs.BytesBefore = s.stats.Bytes
	s.mu.Unlock()

	// 1. Drop quarantine debris.
	qdir := filepath.Join(s.dir, quarantineSub)
	if names, err := os.ReadDir(qdir); err == nil {
		for _, d := range names {
			if d.IsDir() {
				continue
			}
			if os.Remove(filepath.Join(qdir, d.Name())) == nil {
				cs.QuarantineRemoved++
			}
		}
	}

	// 2. Recount the directory. Temp debris is removed and corrupt
	// entries are quarantined afresh (kept until the next compaction),
	// exactly like Open's sweep.
	type onDisk struct {
		size  int64
		mtime time.Time
	}
	live := map[string]onDisk{}
	root := filepath.Join(s.dir, layoutDir)
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			if os.IsNotExist(err) {
				return nil
			}
			return fmt.Errorf("store: compact rescan %s: %w", path, err)
		}
		if d.IsDir() {
			return nil
		}
		if strings.Contains(d.Name(), tmpMarker) {
			if rerr := os.Remove(path); rerr != nil && !os.IsNotExist(rerr) {
				return fmt.Errorf("store: compact remove temp %s: %w", path, rerr)
			}
			return nil
		}
		_, raw, ok := readEnvelope(path)
		if !ok {
			s.quarantine(path)
			return nil
		}
		var mtime time.Time
		if info, ierr := d.Info(); ierr == nil {
			mtime = info.ModTime()
		}
		live[path] = onDisk{size: int64(len(raw)), mtime: mtime}
		return nil
	})
	if err != nil {
		return cs, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	// Drop index entries whose files are gone; true up sizes of the rest.
	for _, path := range s.disk.paths() {
		od, ok := live[path]
		if !ok {
			s.disk.remove(path)
			continue
		}
		if el := s.disk.entries[path]; el.Value.(*diskEntry).size != od.size {
			e := el.Value.(*diskEntry)
			s.disk.bytes += od.size - e.size
			e.size = od.size
		}
	}
	// Adopt files this handle never saw, at the cold end: newest first,
	// so the back of the list — the first victim — is the oldest.
	var unknown []string
	for path := range live {
		if !s.disk.has(path) {
			unknown = append(unknown, path)
		}
	}
	sort.Slice(unknown, func(i, j int) bool {
		ti, tj := live[unknown[i]].mtime, live[unknown[j]].mtime
		if !ti.Equal(tj) {
			return ti.After(tj)
		}
		return unknown[i] > unknown[j]
	})
	for _, path := range unknown {
		s.disk.putCold(path, live[path].size)
	}
	s.stats.Entries = int64(s.disk.len())
	s.stats.Bytes = s.disk.bytes

	// 3. Re-apply the budget.
	evictedBefore := s.stats.DiskEvictions
	s.enforceBudgetLocked("")
	cs.Evicted = s.stats.DiskEvictions - evictedBefore
	s.stats.Compactions++
	cs.EntriesAfter = s.stats.Entries
	cs.BytesAfter = s.stats.Bytes
	return cs, nil
}
