package store

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func mustOpen(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	payload := []byte(`{"found": true, "n": 3}`)
	if err := s.Put(context.Background(), "search", "fp-1", payload); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get(context.Background(), "search", "fp-1")
	if err != nil || !ok {
		t.Fatalf("Get = %v, %v, %v", got, ok, err)
	}
	// Payloads are compacted to canonical bytes.
	if want := `{"found":true,"n":3}`; string(got) != want {
		t.Fatalf("payload = %s, want %s", got, want)
	}
	if _, ok, _ := s.Get(context.Background(), "search", "fp-2"); ok {
		t.Fatal("absent key reported present")
	}
	if _, ok, _ := s.Get(context.Background(), "census-row", "fp-1"); ok {
		t.Fatal("kinds must not share a namespace")
	}
	st := s.Stats()
	if st.Entries != 1 || st.Puts != 1 || st.MemHits != 1 || st.Misses != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestPutRejectsBadInput(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	if err := s.Put(context.Background(), "search", "k", []byte(`not json`)); err == nil {
		t.Fatal("non-JSON payload accepted")
	}
	if err := s.Put(context.Background(), "Bad/Kind", "k", []byte(`1`)); err == nil {
		t.Fatal("invalid kind accepted")
	}
	if _, _, err := s.Get(context.Background(), "", "k"); err == nil {
		t.Fatal("empty kind accepted")
	}
}

func TestPutIdempotentNoop(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	// Logically equal but differently formatted payloads must coalesce
	// to one canonical entry and never rewrite the file.
	if err := s.Put(context.Background(), "job", "id", []byte(`{"a": 1, "b": 2}`)); err != nil {
		t.Fatal(err)
	}
	path, err := s.entryPath("job", "id")
	if err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	info1, _ := os.Stat(path)
	if err := s.Put(context.Background(), "job", "id", []byte("{\"a\":1,\n\"b\":2}")); err != nil {
		t.Fatal(err)
	}
	after, _ := os.ReadFile(path)
	if !bytes.Equal(before, after) {
		t.Fatalf("idempotent put changed the entry:\n%s\nvs\n%s", before, after)
	}
	info2, _ := os.Stat(path)
	if !info1.ModTime().Equal(info2.ModTime()) {
		t.Fatal("idempotent put rewrote the file")
	}
	st := s.Stats()
	if st.Puts != 1 || st.PutNoops != 1 || st.Entries != 1 {
		t.Fatalf("stats: %+v", st)
	}
	// A changed payload DOES rewrite.
	if err := s.Put(context.Background(), "job", "id", []byte(`{"a":1,"b":3}`)); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Puts != 2 || st.Entries != 1 {
		t.Fatalf("stats after overwrite: %+v", st)
	}
}

// TestKillMidWrite simulates a writer dying between creating its temp
// file and renaming it: the next Open must delete the debris and keep
// serving the intact committed entry.
func TestKillMidWrite(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	if err := s.Put(context.Background(), "search", "fp", []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	path, _ := s.entryPath("search", "fp")

	// Debris from a crashed overwrite of an existing entry...
	for i, junk := range []string{`{"v":`, "", `garbage`} {
		tmp := path + fmt.Sprintf("%s%d", tmpMarker, i)
		if err := os.WriteFile(tmp, []byte(junk), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// ...and from a crashed first write of a new entry.
	orphanDir := filepath.Join(dir, layoutDir, "search", "zz")
	if err := os.MkdirAll(orphanDir, 0o755); err != nil {
		t.Fatal(err)
	}
	orphan := filepath.Join(orphanDir, "deadbeef.json"+tmpMarker+"42")
	if err := os.WriteFile(orphan, []byte(`{`), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, Options{})
	got, ok, err := s2.Get(context.Background(), "search", "fp")
	if err != nil || !ok || string(got) != `{"v":1}` {
		t.Fatalf("entry lost after crash recovery: %s, %v, %v", got, ok, err)
	}
	if st := s2.Stats(); st.Entries != 1 || st.Quarantined != 0 {
		t.Fatalf("stats after sweep: %+v", st)
	}
	matches, _ := filepath.Glob(filepath.Join(dir, layoutDir, "*", "*", "*"+tmpMarker+"*"))
	if len(matches) != 0 {
		t.Fatalf("temp debris survived the sweep: %v", matches)
	}
	if _, err := os.Lstat(orphan); !os.IsNotExist(err) {
		t.Fatal("orphaned temp file survived the sweep")
	}
}

// TestCorruptEntryQuarantineOnOpen covers every corruption class the
// sweep must catch: truncation, bit rot in the payload, an alien
// schema version, and plain non-JSON.
func TestCorruptEntryQuarantineOnOpen(t *testing.T) {
	corruptions := []struct {
		name    string
		corrupt func(data []byte) []byte
	}{
		{"truncated", func(d []byte) []byte { return d[:len(d)/2] }},
		{"payload-flip", func(d []byte) []byte {
			out := bytes.Replace(d, []byte(`"payload":{"v":1`), []byte(`"payload":{"v":9`), 1)
			if bytes.Equal(out, d) {
				t.Fatal("corruption did not apply")
			}
			return out
		}},
		{"future-version", func(d []byte) []byte {
			return bytes.Replace(d, []byte(`"version":1`), []byte(`"version":99`), 1)
		}},
		{"not-json", func(d []byte) []byte { return []byte("<html>not a store entry</html>") }},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s := mustOpen(t, dir, Options{})
			if err := s.Put(context.Background(), "job", "good", []byte(`{"keep":true}`)); err != nil {
				t.Fatal(err)
			}
			if err := s.Put(context.Background(), "job", "bad", []byte(`{"v":1}`)); err != nil {
				t.Fatal(err)
			}
			path, _ := s.entryPath("job", "bad")
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.corrupt(data), 0o644); err != nil {
				t.Fatal(err)
			}

			s2 := mustOpen(t, dir, Options{})
			if _, ok, err := s2.Get(context.Background(), "job", "bad"); ok || err != nil {
				t.Fatalf("corrupt entry served: ok=%v err=%v", ok, err)
			}
			if got, ok, _ := s2.Get(context.Background(), "job", "good"); !ok || string(got) != `{"keep":true}` {
				t.Fatalf("healthy sibling entry lost: %s, %v", got, ok)
			}
			if st := s2.Stats(); st.Quarantined != 1 || st.Entries != 1 {
				t.Fatalf("stats: %+v", st)
			}
			// The corpse is preserved for inspection, not deleted.
			q, _ := os.ReadDir(filepath.Join(dir, quarantineSub))
			if len(q) != 1 {
				t.Fatalf("quarantine holds %d files, want 1", len(q))
			}
			// A healing re-put restores the entry.
			if err := s2.Put(context.Background(), "job", "bad", []byte(`{"v":1}`)); err != nil {
				t.Fatal(err)
			}
			if got, ok, _ := s2.Get(context.Background(), "job", "bad"); !ok || string(got) != `{"v":1}` {
				t.Fatalf("re-put did not heal: %s, %v", got, ok)
			}
		})
	}
}

// TestCorruptEntryQuarantineOnGet covers rot that happens after Open:
// Get must quarantine and report a miss rather than fail.
func TestCorruptEntryQuarantineOnGet(t *testing.T) {
	dir := t.TempDir()
	// Disable the memory front so Get actually re-reads the disk.
	s := mustOpen(t, dir, Options{CacheEntries: -1})
	if err := s.Put(context.Background(), "search", "fp", []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	path, _ := s.entryPath("search", "fp")
	if err := os.WriteFile(path, []byte(`{"version":1,"truncat`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Get(context.Background(), "search", "fp"); ok || err != nil {
		t.Fatalf("rotten entry served: ok=%v err=%v", ok, err)
	}
	st := s.Stats()
	if st.Quarantined != 1 || st.Misses != 1 || st.Entries != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if _, err := os.Lstat(path); !os.IsNotExist(err) {
		t.Fatal("rotten entry still in place")
	}
}

// TestConcurrentOpenSharedDir opens the same directory from two
// goroutines (as rcserve and rcatlas may) and hammers both handles
// concurrently; every committed write must be readable through either.
func TestConcurrentOpenSharedDir(t *testing.T) {
	dir := t.TempDir()
	var (
		stores [2]*Store
		wg     sync.WaitGroup
		errs   = make([]error, 2)
	)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			stores[i], errs[i] = Open(dir, Options{CacheEntries: 4})
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("concurrent open %d: %v", i, err)
		}
	}
	const perStore = 25
	for i, s := range stores {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < perStore; k++ {
				key := fmt.Sprintf("key-%d-%d", i, k)
				if err := s.Put(context.Background(), "job", key, []byte(fmt.Sprintf(`{"n":%d}`, k))); err != nil {
					t.Error(err)
					return
				}
				if _, ok, err := s.Get(context.Background(), "job", key); !ok || err != nil {
					t.Errorf("read own write %s: ok=%v err=%v", key, ok, err)
				}
			}
		}()
	}
	wg.Wait()
	// Cross-read: everything either handle wrote is visible to the other.
	for i := 0; i < 2; i++ {
		other := stores[1-i]
		for k := 0; k < perStore; k++ {
			key := fmt.Sprintf("key-%d-%d", i, k)
			got, ok, err := other.Get(context.Background(), "job", key)
			if !ok || err != nil || string(got) != fmt.Sprintf(`{"n":%d}`, k) {
				t.Fatalf("cross-read %s: %s, %v, %v", key, got, ok, err)
			}
		}
	}
}

func TestLRUFrontBehavior(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{CacheEntries: 2})
	for i := 0; i < 3; i++ {
		if err := s.Put(context.Background(), "search", fmt.Sprintf("k%d", i), []byte(`{}`)); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.Evictions != 1 {
		t.Fatalf("3 puts into a 2-entry front: %+v", st)
	}
	// k0 was evicted from the front but survives on disk.
	if _, ok, _ := s.Get(context.Background(), "search", "k0"); !ok {
		t.Fatal("evicted entry lost from disk")
	}
	st := s.Stats()
	if st.DiskHits != 1 || st.MemHits != 0 {
		t.Fatalf("front eviction stats: %+v", st)
	}
	// Reading k0 promoted it; k2 stays, k1 is now the LRU victim.
	if _, ok, _ := s.Get(context.Background(), "search", "k2"); !ok {
		t.Fatal("k2 lost")
	}
	if st := s.Stats(); st.MemHits != 1 {
		t.Fatalf("k2 should be a memory hit: %+v", st)
	}
	if _, ok, _ := s.Get(context.Background(), "search", "k1"); !ok {
		t.Fatal("k1 lost")
	}
	if st := s.Stats(); st.DiskHits != 2 {
		t.Fatalf("k1 should have been the LRU victim (disk hit): %+v", st)
	}
	// Mutating a returned payload must not corrupt the cached copy.
	got, _, _ := s.Get(context.Background(), "search", "k1")
	if len(got) > 0 {
		got[0] = 'X'
	}
	again, _, _ := s.Get(context.Background(), "search", "k1")
	if string(again) != "{}" {
		t.Fatalf("caller mutation corrupted the front: %s", again)
	}
}

// TestEnvelopeIdentity checks the defense against serving a file whose
// address matches but whose recorded identity does not (e.g. a file
// copied by hand between stores of different kinds).
func TestEnvelopeIdentity(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{CacheEntries: -1})
	if err := s.Put(context.Background(), "search", "fp", []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	src, _ := s.entryPath("search", "fp")
	dst, _ := s.entryPath("search", "other")
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get(context.Background(), "search", "other"); ok {
		t.Fatal("entry with mismatched identity served")
	}
}

// TestStoreReopenPreservesEntries is the restart-survival core: a fresh
// Store on the same directory serves every result the old one wrote.
func TestStoreReopenPreservesEntries(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	var keys []string
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("fp-%02d", i)
		keys = append(keys, key)
		if err := s.Put(context.Background(), "census-row", key, []byte(fmt.Sprintf(`{"row":%d}`, i))); err != nil {
			t.Fatal(err)
		}
	}
	s2 := mustOpen(t, dir, Options{})
	if st := s2.Stats(); st.Entries != 20 {
		t.Fatalf("reopened store sees %d entries, want 20", st.Entries)
	}
	for i, key := range keys {
		got, ok, err := s2.Get(context.Background(), "census-row", key)
		if !ok || err != nil || string(got) != fmt.Sprintf(`{"row":%d}`, i) {
			t.Fatalf("entry %s lost across reopen: %s, %v, %v", key, got, ok, err)
		}
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := Open("", Options{}); err == nil {
		t.Fatal("empty dir accepted")
	}
	// A file where the store root should be.
	dir := t.TempDir()
	path := filepath.Join(dir, "occupied")
	if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, Options{}); err == nil {
		t.Fatal("file-as-root accepted")
	}
}

func TestEnvelopeOnDiskShape(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	if err := s.Put(context.Background(), "job", "the-key", []byte(`{"x":1}`)); err != nil {
		t.Fatal(err)
	}
	path, _ := s.entryPath("job", "the-key")
	if !strings.HasPrefix(path, filepath.Join(dir, "v1", "job")) {
		t.Fatalf("unexpected layout: %s", path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatal(err)
	}
	if env.Version != Version || env.Kind != "job" || env.Key != "the-key" ||
		!strings.HasPrefix(env.Checksum, "sha256:") || string(env.Payload) != `{"x":1}` {
		t.Fatalf("envelope: %+v", env)
	}
}
