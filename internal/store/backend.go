package store

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"rcons/internal/obs"
)

// Backend is one tier of a read-through result-store chain. *Store is
// the local on-disk tier, *Peer reads through to another replica over
// HTTP, and *Chain composes tiers. The method set is a superset of the
// Persist interfaces in internal/engine and internal/jobs, so any
// Backend plugs straight into the engine's memo path, the job
// manager's result store and the census resume path.
//
// Contract: Get's ok=false means "not stored" — an integrity failure
// is never surfaced as a hit (local tiers quarantine, peers re-verify
// checksums on receipt and reject). Errors are operational (I/O, the
// network, a down peer); callers treat them as misses and recompute,
// so a degraded tier can slow the fleet but never poison or fail it.
//
// The context carries cancellation, the trace ID and the active span:
// *Peer propagates the trace over the wire (X-RC-Trace) and bounds its
// requests by ctx, and every tier hangs its span off the caller's, so
// a traced request attributes its time to the exact tier that served
// it. Tiers never fail on a context without a trace.
type Backend interface {
	Get(ctx context.Context, kind, key string) ([]byte, bool, error)
	Put(ctx context.Context, kind, key string, payload []byte) error
	// Name identifies the tier in metrics and logs ("local", a peer's
	// base URL).
	Name() string
}

// Chain composes backends into one tiered store: Get consults tiers in
// order and, on a hit in a far tier, writes the payload back through
// every nearer tier (best-effort) so the next lookup is local — the
// read-through warming that lets a cold rcserve replica fill its own
// store from a warm peer. Put writes to the first tier only: local
// results reach peers when the peers come asking, not by broadcast
// (except in a diskless chain whose first tier IS a peer, where Put
// pushes the result into the shared pool).
type Chain struct {
	tiers []Backend
}

// NewChain builds a chain over the given tiers, nearest first. It
// panics on an empty tier list — a chain with nothing behind it is a
// caller bug, not a runtime condition.
func NewChain(tiers ...Backend) *Chain {
	if len(tiers) == 0 {
		panic("store: NewChain with no tiers")
	}
	return &Chain{tiers: tiers}
}

// Name lists the tier names in order.
func (c *Chain) Name() string {
	names := make([]string, len(c.tiers))
	for i, t := range c.tiers {
		names[i] = t.Name()
	}
	return "chain(" + strings.Join(names, ",") + ")"
}

// Get returns the first tier's answer, warming nearer tiers on a far
// hit. A tier error is remembered but never final while tiers remain:
// only if every tier misses is the first error reported (alongside
// ok=false, so callers that ignore the error still just recompute).
func (c *Chain) Get(ctx context.Context, kind, key string) ([]byte, bool, error) {
	ctx, span := obs.StartSpan(ctx, "store.chain")
	defer span.End()
	var firstErr error
	for i, t := range c.tiers {
		data, ok, err := t.Get(ctx, kind, key)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if !ok {
			continue
		}
		span.SetAttr("hit", t.Name())
		for j := 0; j < i; j++ {
			// Write-back healing is best-effort: a full or read-only
			// nearer tier must not turn a perfectly good hit into a miss.
			_ = c.tiers[j].Put(ctx, kind, key, data)
		}
		return data, true, nil
	}
	span.SetAttr("hit", "miss")
	return nil, false, firstErr
}

// Put writes through the first tier.
func (c *Chain) Put(ctx context.Context, kind, key string, payload []byte) error {
	return c.tiers[0].Put(ctx, kind, key, payload)
}

// ParseSize parses a human-readable byte size: a plain integer
// ("1048576") or one with a K/M/G/T suffix in powers of 1024
// ("64M", "2g", "512KiB", "1TB"). Used by the -store-budget flags.
func ParseSize(s string) (int64, error) {
	in := strings.TrimSpace(s)
	t := strings.ToUpper(in)
	var mult int64 = 1
	for _, suf := range []struct {
		name string
		mult int64
	}{
		{"KIB", 1 << 10}, {"KB", 1 << 10}, {"K", 1 << 10},
		{"MIB", 1 << 20}, {"MB", 1 << 20}, {"M", 1 << 20},
		{"GIB", 1 << 30}, {"GB", 1 << 30}, {"G", 1 << 30},
		{"TIB", 1 << 40}, {"TB", 1 << 40}, {"T", 1 << 40},
	} {
		if strings.HasSuffix(t, suf.name) {
			mult = suf.mult
			t = strings.TrimSuffix(t, suf.name)
			break
		}
	}
	n, err := strconv.ParseInt(strings.TrimSpace(t), 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("store: invalid size %q (want e.g. 1048576, 64M, 2G)", s)
	}
	if mult > 1 && n > (1<<62)/mult {
		return 0, fmt.Errorf("store: size %q overflows", s)
	}
	return n * mult, nil
}
