// Package store is a crash-safe, content-addressed, on-disk result
// store: the persistence layer under the classification engine's memo
// cache, the census pipeline's resume path and the job manager's
// results, shared by rcons, rcatlas and rcserve.
//
// Entries live in namespaced kinds ("search", "census-row", "job") and
// are addressed by the SHA-256 of (kind, key) — keys are canonical
// fingerprints or other deterministic identities, so the same
// computation always lands in the same file regardless of which binary
// performed it. Each entry is a versioned JSON envelope carrying the
// kind, the full key and a SHA-256 checksum of the payload, so reads
// verify both integrity and identity (a hash collision or a stray file
// cannot serve the wrong result).
//
// Crash safety: writes go to a temporary file in the entry's directory,
// are fsynced, and are renamed into place — readers never observe a
// partial entry. Open sweeps the store: leftover temp files from a
// killed writer are deleted, and entries that fail to parse or whose
// checksum does not match are moved into a quarantine directory instead
// of being served or silently deleted (Get does the same if an entry
// rots after Open). A bounded in-memory LRU fronts the disk with
// hit/miss/eviction counters.
//
// Payloads must be JSON (they are embedded verbatim in the envelope);
// Put compacts them, so logically equal payloads are byte-identical on
// disk and re-putting an unchanged result is a no-op that never
// rewrites the file — which keeps store-enabled runs byte-deterministic.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// Version identifies the on-disk envelope schema; entries with another
// version are quarantined, not misread.
const Version = 1

const (
	layoutDir     = "v1"
	quarantineSub = "quarantine"
	tmpMarker     = ".tmp"
)

// envelope is the on-disk form of one entry.
type envelope struct {
	Version  int             `json:"version"`
	Kind     string          `json:"kind"`
	Key      string          `json:"key"`
	Checksum string          `json:"checksum"` // "sha256:" + hex of Payload
	Payload  json.RawMessage `json:"payload"`
}

// Options configures a Store.
type Options struct {
	// CacheEntries bounds the in-memory LRU front; 0 means 1024,
	// negative disables the front entirely (every Get reads disk).
	CacheEntries int
}

// Stats reports a store's cumulative behavior. All counters are
// monotone for the life of the process except Entries, which tracks the
// current number of valid entries on disk.
type Stats struct {
	// Entries is the number of valid entries on disk (counted at Open,
	// maintained by Put).
	Entries int64 `json:"entries"`
	// MemHits are Gets served by the LRU front; DiskHits read and
	// verified a file; Misses found nothing.
	MemHits  int64 `json:"memHits"`
	DiskHits int64 `json:"diskHits"`
	Misses   int64 `json:"misses"`
	// Puts wrote a new or changed entry; PutNoops skipped a write
	// because an identical entry was already on disk.
	Puts     int64 `json:"puts"`
	PutNoops int64 `json:"putNoops"`
	// Evictions counts LRU-front entries dropped for the size bound.
	Evictions int64 `json:"evictions"`
	// Quarantined counts corrupt entries moved aside (at Open or Get).
	Quarantined int64 `json:"quarantined"`
}

// Store is a content-addressed result store rooted at one directory.
// It is safe for concurrent use; two Stores may even share a directory
// (writes are atomic renames), though they will not share an LRU front.
type Store struct {
	dir string

	mu    sync.Mutex
	front *lruFront // nil when the memory front is disabled
	stats Stats

	// writeLocks serialize the read-check-then-write sections per entry
	// address (striped), so concurrent Puts of one key cannot both
	// observe "absent" and double-count Entries, and a Get racing a Put
	// on the same entry sees either the old or the new complete state.
	writeLocks [64]sync.Mutex
}

// writeLock returns the stripe guarding the given address.
func (s *Store) writeLock(a string) *sync.Mutex {
	// a is hex (lowercase); fold the first two characters into 0..63.
	return &s.writeLocks[(hexVal(a[0])<<4|hexVal(a[1]))%64]
}

func hexVal(c byte) int {
	if c >= 'a' {
		return int(c-'a') + 10
	}
	return int(c - '0')
}

// Open initializes dir (creating it if needed), deletes temp files left
// by writers that died mid-write, and verifies every entry — parse
// failures, checksum mismatches and alien versions are moved to
// dir/quarantine rather than served later. The scan makes Open O(store
// size); the stores this repository writes hold small JSON results, so
// the integrity pass is cheap relative to recomputing even one of them.
func Open(dir string, opts Options) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	for _, sub := range []string{layoutDir, quarantineSub} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("store: init %s: %w", dir, err)
		}
	}
	s := &Store{dir: dir}
	switch {
	case opts.CacheEntries == 0:
		s.front = newLRUFront(1024)
	case opts.CacheEntries > 0:
		s.front = newLRUFront(opts.CacheEntries)
	}
	if err := s.sweep(); err != nil {
		return nil, err
	}
	return s, nil
}

// sweep is Open's integrity pass over dir/v1.
func (s *Store) sweep() error {
	root := filepath.Join(s.dir, layoutDir)
	return filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			// A concurrently-opened store may have swept a file first.
			if os.IsNotExist(err) {
				return nil
			}
			return fmt.Errorf("store: sweep %s: %w", path, err)
		}
		if d.IsDir() {
			return nil
		}
		if strings.Contains(d.Name(), tmpMarker) {
			// A writer died between create and rename; the entry it was
			// replacing (if any) is still intact under the final name.
			if rerr := os.Remove(path); rerr != nil && !os.IsNotExist(rerr) {
				return fmt.Errorf("store: remove stale temp %s: %w", path, rerr)
			}
			return nil
		}
		if _, ok := readEnvelope(path); !ok {
			s.quarantine(path)
			return nil
		}
		s.mu.Lock()
		s.stats.Entries++
		s.mu.Unlock()
		return nil
	})
}

// quarantine moves a corrupt entry into dir/quarantine under its base
// name and reports whether this call actually moved it. Failures
// (including the file vanishing under a concurrent store) are not
// errors: quarantine is best-effort containment, and the entry is
// treated as absent either way.
func (s *Store) quarantine(path string) bool {
	dest := filepath.Join(s.dir, quarantineSub, filepath.Base(path))
	moved := os.Rename(path, dest) == nil
	if moved {
		s.mu.Lock()
		s.stats.Quarantined++
		s.mu.Unlock()
	}
	return moved
}

// addr derives the content address of (kind, key): a SHA-256 over both,
// hex-encoded. The kind is also a directory level and the first address
// byte a fan-out level, keeping directories small.
func addr(kind, key string) string {
	h := sha256.New()
	h.Write([]byte(kind))
	h.Write([]byte{0})
	h.Write([]byte(key))
	return hex.EncodeToString(h.Sum(nil))
}

func (s *Store) entryPath(kind, key string) (string, error) {
	if !validKind(kind) {
		return "", fmt.Errorf("store: invalid kind %q (want lowercase [a-z0-9-])", kind)
	}
	a := addr(kind, key)
	return filepath.Join(s.dir, layoutDir, kind, a[:2], a+".json"), nil
}

// validKind keeps kinds usable as directory names on every platform.
func validKind(kind string) bool {
	if kind == "" {
		return false
	}
	for i := 0; i < len(kind); i++ {
		c := kind[i]
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '-' {
			return false
		}
	}
	return true
}

func checksum(payload []byte) string {
	sum := sha256.Sum256(payload)
	return "sha256:" + hex.EncodeToString(sum[:])
}

// readEnvelope loads and fully verifies one entry file.
func readEnvelope(path string) (*envelope, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	var env envelope
	if json.Unmarshal(data, &env) != nil {
		return nil, false
	}
	if env.Version != Version || env.Checksum != checksum(env.Payload) {
		return nil, false
	}
	return &env, true
}

// Get returns the payload stored under (kind, key). ok is false when no
// (valid) entry exists; a corrupt entry is quarantined and reported as
// absent, never as an error — the caller recomputes and Put heals the
// store.
func (s *Store) Get(kind, key string) ([]byte, bool, error) {
	path, err := s.entryPath(kind, key)
	if err != nil {
		return nil, false, err
	}
	ck := kind + "\x00" + key
	s.mu.Lock()
	if s.front != nil {
		if payload, ok := s.front.get(ck); ok {
			s.stats.MemHits++
			s.mu.Unlock()
			return append([]byte(nil), payload...), true, nil
		}
	}
	s.mu.Unlock()

	wl := s.writeLock(addr(kind, key))
	wl.Lock()
	env, ok := readEnvelope(path)
	if !ok {
		if _, serr := os.Lstat(path); serr == nil && s.quarantine(path) {
			// The file exists but does not verify: corrupt entry.
			s.mu.Lock()
			s.stats.Entries--
			s.mu.Unlock()
		}
		wl.Unlock()
		s.mu.Lock()
		s.stats.Misses++
		s.mu.Unlock()
		return nil, false, nil
	}
	wl.Unlock()
	if env.Kind != kind || env.Key != key {
		// Address collision or a file moved by hand; identity must match.
		s.mu.Lock()
		s.stats.Misses++
		s.mu.Unlock()
		return nil, false, nil
	}
	s.mu.Lock()
	s.stats.DiskHits++
	if s.front != nil {
		s.stats.Evictions += s.front.put(ck, env.Payload)
	}
	s.mu.Unlock()
	return append([]byte(nil), env.Payload...), true, nil
}

// Put stores payload (which must be valid JSON) under (kind, key),
// atomically: a reader — or a crash — can only ever observe the old
// complete entry or the new complete entry. Re-putting a byte-identical
// payload is a no-op.
func (s *Store) Put(kind, key string, payload []byte) error {
	path, err := s.entryPath(kind, key)
	if err != nil {
		return err
	}
	var compact json.RawMessage
	if err := json.Unmarshal(payload, &compact); err != nil {
		return fmt.Errorf("store: payload for %s/%s is not JSON: %w", kind, key, err)
	}
	buf, err := json.Marshal(compact) // canonical compact bytes
	if err != nil {
		return fmt.Errorf("store: compact payload for %s/%s: %w", kind, key, err)
	}
	env := envelope{Version: Version, Kind: kind, Key: key, Checksum: checksum(buf), Payload: buf}
	data, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("store: encode entry %s/%s: %w", kind, key, err)
	}

	wl := s.writeLock(addr(kind, key))
	wl.Lock()
	defer wl.Unlock()
	existed := false
	if old, ok := readEnvelope(path); ok {
		existed = true
		if old.Kind == kind && old.Key == key && old.Checksum == env.Checksum {
			s.mu.Lock()
			s.stats.PutNoops++
			if s.front != nil {
				s.stats.Evictions += s.front.put(kind+"\x00"+key, buf)
			}
			s.mu.Unlock()
			return nil
		}
	}
	if err := writeAtomic(path, data); err != nil {
		return fmt.Errorf("store: write %s/%s: %w", kind, key, err)
	}
	s.mu.Lock()
	s.stats.Puts++
	if !existed {
		s.stats.Entries++
	}
	if s.front != nil {
		s.stats.Evictions += s.front.put(kind+"\x00"+key, buf)
	}
	s.mu.Unlock()
	return nil
}

// writeAtomic writes data next to path and renames it into place. The
// temp name embeds tmpMarker so Open's sweep recognizes debris from a
// crashed writer.
func writeAtomic(path string, data []byte) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+tmpMarker+"*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if _, err := f.Write(data); err != nil {
		return cleanup(err)
	}
	// fsync before rename: on a crash the renamed entry must never be
	// an empty or partial file (the checksum would catch it, but a
	// verified write keeps the store warm across power loss too).
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}
