// Package store is a crash-safe, content-addressed, on-disk result
// store: the persistence layer under the classification engine's memo
// cache, the census pipeline's resume path and the job manager's
// results, shared by rcons, rcatlas and rcserve.
//
// Entries live in namespaced kinds ("search", "census-row", "job") and
// are addressed by the SHA-256 of (kind, key) — keys are canonical
// fingerprints or other deterministic identities, so the same
// computation always lands in the same file regardless of which binary
// performed it. Each entry is a versioned JSON envelope carrying the
// kind, the full key and a SHA-256 checksum of the payload, so reads
// verify both integrity and identity (a hash collision or a stray file
// cannot serve the wrong result).
//
// Crash safety: writes go to a temporary file in the entry's directory,
// are fsynced, and are renamed into place — readers never observe a
// partial entry. Open sweeps the store: leftover temp files from a
// killed writer are deleted, and entries that fail to parse, whose
// checksum does not match, or whose recorded identity does not match
// their address are moved into a quarantine directory instead of being
// served or silently deleted (Get does the same if an entry rots after
// Open). A bounded in-memory LRU fronts the disk with hit/miss/eviction
// counters.
//
// Tiering: the store is one tier of a fleet-wide cache. Backend is the
// tier interface — *Store is the local on-disk tier, *Peer reads
// through to another replica's /v1/store HTTP routes, and Chain
// composes them with write-back healing — so several rcserve replicas
// or census shard workers share one content-addressed result pool and
// a miss anywhere degrades to a recompute, never a failure.
//
// Budget: Options.BudgetBytes caps the bytes of entry files on disk.
// The usage is counted at Open, maintained by every Put, and enforced
// by size-aware LRU eviction — least-recently-used entries are deleted,
// deterministically (recency order, ties at Open broken by mtime then
// path). Compact is the offline+online compaction pass: it drops
// quarantine debris, reconciles the index against the directory, and
// re-applies the budget.
//
// Sharing a directory: two Stores may share one directory (writes are
// atomic renames, reads verify), but each maintains only its own view
// of the entry population — Stats.Entries can undercount files another
// writer added until a read adopts them or Compact recounts. Budget
// enforcement therefore assumes a single budgeted writer per directory;
// run extra readers unbudgeted.
//
// Payloads must be JSON (they are embedded verbatim in the envelope);
// Put compacts them, so logically equal payloads are byte-identical on
// disk and re-putting an unchanged result is a no-op that never
// rewrites the file — which keeps store-enabled runs byte-deterministic.
package store

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"rcons/internal/obs"
)

// Version identifies the on-disk envelope schema; entries with another
// version are quarantined, not misread.
const Version = 1

const (
	layoutDir     = "v1"
	quarantineSub = "quarantine"
	tmpMarker     = ".tmp"
)

// envelope is the on-disk form of one entry.
type envelope struct {
	Version  int             `json:"version"`
	Kind     string          `json:"kind"`
	Key      string          `json:"key"`
	Checksum string          `json:"checksum"` // "sha256:" + hex of Payload
	Payload  json.RawMessage `json:"payload"`
}

// Options configures a Store.
type Options struct {
	// CacheEntries bounds the in-memory LRU front; 0 means 1024,
	// negative disables the front entirely (every Get reads disk).
	CacheEntries int
	// BudgetBytes caps the cumulative size of entry files under the
	// store's data directory; 0 means unlimited. Open enforces it
	// immediately (evicting least-recently-written entries of an
	// oversized directory) and every Put maintains it by size-aware LRU
	// eviction. A Put never evicts the entry it just wrote, so a single
	// entry larger than the budget is kept rather than thrashed.
	BudgetBytes int64
}

// Stats reports a store's cumulative behavior. All counters are
// monotone for the life of the process except Entries and Bytes, which
// track the current valid entries this Store knows about on disk.
type Stats struct {
	// Entries and Bytes count the valid entries (and their file bytes)
	// in this Store's view of the directory: populated at Open,
	// maintained by Put/eviction/quarantine, extended when a read
	// adopts an entry another writer added, reconciled by Compact.
	Entries int64 `json:"entries"`
	Bytes   int64 `json:"bytes"`
	// MemHits are Gets served by the LRU front; DiskHits read and
	// verified a file; Misses found nothing.
	MemHits  int64 `json:"memHits"`
	DiskHits int64 `json:"diskHits"`
	Misses   int64 `json:"misses"`
	// Puts wrote a new or changed entry; PutNoops skipped a write
	// because an identical entry was already on disk.
	Puts     int64 `json:"puts"`
	PutNoops int64 `json:"putNoops"`
	// Evictions counts LRU-front entries dropped for the size bound;
	// DiskEvictions counts entry files deleted to respect BudgetBytes.
	Evictions     int64 `json:"evictions"`
	DiskEvictions int64 `json:"diskEvictions"`
	// Quarantined counts corrupt entries moved aside (at Open or Get).
	Quarantined int64 `json:"quarantined"`
	// Compactions counts completed Compact passes.
	Compactions int64 `json:"compactions"`
}

// Store is a content-addressed result store rooted at one directory.
// It is safe for concurrent use; two Stores may even share a directory
// (writes are atomic renames), though they will not share an LRU front
// and only one of them should enforce a byte budget (see the package
// doc on sharing).
type Store struct {
	dir    string
	budget int64

	mu    sync.Mutex
	front *lruFront // nil when the memory front is disabled
	disk  *diskIndex
	stats Stats

	// writeLocks serialize the read-check-then-write sections per entry
	// address (striped), so concurrent Puts of one key cannot both
	// observe "absent" and double-count Entries, and a Get racing a Put
	// on the same entry sees either the old or the new complete state.
	writeLocks [64]sync.Mutex
}

// writeLock returns the stripe guarding the given address.
func (s *Store) writeLock(a string) *sync.Mutex {
	// a is hex (lowercase); fold the first two characters into 0..63.
	return &s.writeLocks[(hexVal(a[0])<<4|hexVal(a[1]))%64]
}

func hexVal(c byte) int {
	if c >= 'a' {
		return int(c-'a') + 10
	}
	return int(c - '0')
}

// Open initializes dir (creating it if needed), deletes temp files left
// by writers that died mid-write, and verifies every entry — parse
// failures, checksum mismatches and alien versions are moved to
// dir/quarantine rather than served later. The scan makes Open O(store
// size); the stores this repository writes hold small JSON results, so
// the integrity pass is cheap relative to recomputing even one of them.
// With a budget, Open finishes by evicting least-recently-written
// entries (ties broken by path, so recovery is deterministic) until the
// directory fits — the offline half of compaction.
func Open(dir string, opts Options) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if opts.BudgetBytes < 0 {
		return nil, fmt.Errorf("store: negative budget %d", opts.BudgetBytes)
	}
	for _, sub := range []string{layoutDir, quarantineSub} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("store: init %s: %w", dir, err)
		}
	}
	s := &Store{dir: dir, budget: opts.BudgetBytes, disk: newDiskIndex()}
	switch {
	case opts.CacheEntries == 0:
		s.front = newLRUFront(1024)
	case opts.CacheEntries > 0:
		s.front = newLRUFront(opts.CacheEntries)
	}
	if err := s.sweep(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.enforceBudgetLocked("")
	s.mu.Unlock()
	return s, nil
}

// sweep is Open's integrity pass over dir/v1: it removes temp debris,
// quarantines entries that fail verification, and seeds the disk index
// in deterministic recency order (mtime, then path).
func (s *Store) sweep() error {
	root := filepath.Join(s.dir, layoutDir)
	type swept struct {
		path  string
		size  int64
		mtime time.Time
	}
	var found []swept
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			// A concurrently-opened store may have swept a file first.
			if os.IsNotExist(err) {
				return nil
			}
			return fmt.Errorf("store: sweep %s: %w", path, err)
		}
		if d.IsDir() {
			return nil
		}
		if strings.Contains(d.Name(), tmpMarker) {
			// A writer died between create and rename; the entry it was
			// replacing (if any) is still intact under the final name.
			if rerr := os.Remove(path); rerr != nil && !os.IsNotExist(rerr) {
				return fmt.Errorf("store: remove stale temp %s: %w", path, rerr)
			}
			return nil
		}
		_, raw, ok := readEnvelope(path)
		if !ok {
			s.quarantine(path)
			return nil
		}
		var mtime time.Time
		if info, ierr := d.Info(); ierr == nil {
			mtime = info.ModTime()
		}
		found = append(found, swept{path: path, size: int64(len(raw)), mtime: mtime})
		return nil
	})
	if err != nil {
		return err
	}
	sort.Slice(found, func(i, j int) bool {
		if !found[i].mtime.Equal(found[j].mtime) {
			return found[i].mtime.Before(found[j].mtime)
		}
		return found[i].path < found[j].path
	})
	s.mu.Lock()
	for _, f := range found {
		s.disk.put(f.path, f.size) // oldest first ⇒ newest ends up MRU
	}
	s.stats.Entries = int64(s.disk.len())
	s.stats.Bytes = s.disk.bytes
	s.mu.Unlock()
	return nil
}

// quarantine moves a corrupt entry into dir/quarantine and reports
// whether this call actually moved it. The destination name is the
// entry's base name plus, when that name is already taken, a numeric
// suffix — successive corruptions of one entry are all preserved, never
// silently overwritten. Failures (including the file vanishing under a
// concurrent store) are not errors: quarantine is best-effort
// containment, and the entry is treated as absent either way.
func (s *Store) quarantine(path string) bool {
	base := filepath.Base(path)
	for n := 0; n < 10000; n++ {
		name := base
		if n > 0 {
			name = fmt.Sprintf("%s.%d", base, n)
		}
		dest := filepath.Join(s.dir, quarantineSub, name)
		if _, err := os.Lstat(dest); err == nil {
			continue // taken by an earlier corpse; keep both
		}
		if os.Rename(path, dest) == nil {
			s.mu.Lock()
			s.stats.Quarantined++
			s.mu.Unlock()
			return true
		}
		if _, err := os.Lstat(path); err != nil {
			return false // source vanished under a concurrent store
		}
	}
	return false
}

// dropTrackedLocked removes path from the disk index after a
// quarantine or eviction. Untracked paths (written by another store
// sharing the directory, never adopted by this one) leave the counters
// alone — Compact reconciles any residual drift.
func (s *Store) dropTrackedLocked(path string) {
	if size, ok := s.disk.remove(path); ok {
		s.stats.Bytes -= size
		s.stats.Entries--
	}
}

// dropIfVanishedLocked drops a tracked path whose file is gone from
// disk. Used when a misplaced entry reveals its true identity: the
// envelope found at the wrong address names the home path it was moved
// away from, whose index entry is now stale.
func (s *Store) dropIfVanishedLocked(path string) {
	if !s.disk.has(path) {
		return
	}
	if _, err := os.Lstat(path); err != nil {
		s.dropTrackedLocked(path)
	}
}

// adoptLocked records path as a valid entry of the given size, as the
// most recently used; newly seen paths extend Entries/Bytes.
func (s *Store) adoptLocked(path string, size int64) {
	delta, inserted := s.disk.put(path, size)
	s.stats.Bytes += delta
	if inserted {
		s.stats.Entries++
	}
}

// enforceBudgetLocked deletes least-recently-used entries until Bytes
// fits the budget. protect (usually the path a Put just wrote) is never
// evicted. Each eviction is one atomic unlink, so a crash mid-pass
// leaves a valid store that the next Open finishes compacting.
func (s *Store) enforceBudgetLocked(protect string) {
	for s.budget > 0 && s.stats.Bytes > s.budget {
		path, size, ok := s.disk.victim()
		if !ok || path == protect {
			return
		}
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return // unwritable directory; better over budget than spinning
		}
		s.disk.remove(path)
		s.stats.Bytes -= size
		s.stats.Entries--
		s.stats.DiskEvictions++
	}
}

// Addr derives the content address of (kind, key) — what the /v1/store
// peer routes use as the {addr} path element. Exported so clients of
// those routes can build URLs without re-implementing the hash.
func Addr(kind, key string) string { return addr(kind, key) }

// addr derives the content address of (kind, key): a SHA-256 over both,
// hex-encoded. The kind is also a directory level and the first address
// byte a fan-out level, keeping directories small.
func addr(kind, key string) string {
	h := sha256.New()
	h.Write([]byte(kind))
	h.Write([]byte{0})
	h.Write([]byte(key))
	return hex.EncodeToString(h.Sum(nil))
}

func (s *Store) entryPath(kind, key string) (string, error) {
	if !validKind(kind) {
		return "", fmt.Errorf("store: invalid kind %q (want lowercase [a-z0-9-])", kind)
	}
	a := addr(kind, key)
	return filepath.Join(s.dir, layoutDir, kind, a[:2], a+".json"), nil
}

// validKind keeps kinds usable as directory names on every platform.
func validKind(kind string) bool {
	if kind == "" {
		return false
	}
	for i := 0; i < len(kind); i++ {
		c := kind[i]
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '-' {
			return false
		}
	}
	return true
}

// validAddr accepts exactly the addresses addr produces: 64 lowercase
// hex characters.
func validAddr(a string) bool {
	if len(a) != 64 {
		return false
	}
	for i := 0; i < len(a); i++ {
		c := a[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func checksum(payload []byte) string {
	sum := sha256.Sum256(payload)
	return "sha256:" + hex.EncodeToString(sum[:])
}

// encodeEnvelope canonicalizes payload (which must be JSON) and wraps
// it in a versioned, checksummed envelope — the exact bytes Store.Put
// writes and Peer.Put ships, so every tier produces identical files.
func encodeEnvelope(kind, key string, payload []byte) (data []byte, env envelope, err error) {
	if !validKind(kind) {
		return nil, env, fmt.Errorf("store: invalid kind %q (want lowercase [a-z0-9-])", kind)
	}
	var compact json.RawMessage
	if err := json.Unmarshal(payload, &compact); err != nil {
		return nil, env, fmt.Errorf("store: payload for %s/%s is not JSON: %w", kind, key, err)
	}
	buf, err := json.Marshal(compact) // canonical compact bytes
	if err != nil {
		return nil, env, fmt.Errorf("store: compact payload for %s/%s: %w", kind, key, err)
	}
	env = envelope{Version: Version, Kind: kind, Key: key, Checksum: checksum(buf), Payload: buf}
	data, err = json.Marshal(env)
	if err != nil {
		return nil, env, fmt.Errorf("store: encode entry %s/%s: %w", kind, key, err)
	}
	return data, env, nil
}

// readEnvelope loads and fully verifies one entry file, returning the
// parsed envelope and the raw file bytes.
func readEnvelope(path string) (*envelope, []byte, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, false
	}
	var env envelope
	if json.Unmarshal(data, &env) != nil {
		return nil, nil, false
	}
	if env.Version != Version || env.Checksum != checksum(env.Payload) {
		return nil, nil, false
	}
	return &env, data, true
}

// Get returns the payload stored under (kind, key). ok is false when no
// (valid) entry exists; a corrupt or misplaced entry is quarantined and
// reported as absent, never as an error — the caller recomputes and Put
// heals the store. The context only feeds tracing (local I/O is never
// cancelled mid-entry): a traced request gets a "store.local" span
// whose tier attr says whether the memory front, the disk, or nothing
// answered.
func (s *Store) Get(ctx context.Context, kind, key string) ([]byte, bool, error) {
	_, span := obs.StartSpan(ctx, "store.local")
	defer span.End()
	path, err := s.entryPath(kind, key)
	if err != nil {
		span.MarkError()
		return nil, false, err
	}
	ck := kind + "\x00" + key
	s.mu.Lock()
	if s.front != nil {
		if payload, ok := s.front.get(ck); ok {
			s.stats.MemHits++
			s.disk.touch(path) // keep disk recency in step with the front
			s.mu.Unlock()
			span.SetAttr("tier", "mem")
			return append([]byte(nil), payload...), true, nil
		}
	}
	s.mu.Unlock()

	wl := s.writeLock(addr(kind, key))
	wl.Lock()
	env, raw, ok := readEnvelope(path)
	if ok && (env.Kind != kind || env.Key != key) {
		// Address collision or a file moved by hand: identity must match.
		// Quarantine it like any other corruption — leaving it in place
		// would make every future Get re-read and re-miss it forever.
		home, herr := s.entryPath(env.Kind, env.Key)
		ok = false
		if s.quarantine(path) {
			s.mu.Lock()
			s.dropTrackedLocked(path)
			if herr == nil && home != path {
				s.dropIfVanishedLocked(home)
			}
			s.mu.Unlock()
		}
	} else if !ok {
		if _, serr := os.Lstat(path); serr == nil && s.quarantine(path) {
			// The file exists but does not verify: corrupt entry.
			s.mu.Lock()
			s.dropTrackedLocked(path)
			s.mu.Unlock()
		}
	}
	wl.Unlock()
	if !ok {
		s.mu.Lock()
		s.stats.Misses++
		s.mu.Unlock()
		span.SetAttr("tier", "miss")
		return nil, false, nil
	}
	s.mu.Lock()
	s.stats.DiskHits++
	s.adoptLocked(path, int64(len(raw)))
	if s.front != nil {
		s.stats.Evictions += s.front.put(ck, env.Payload)
	}
	s.mu.Unlock()
	span.SetAttr("tier", "disk")
	return append([]byte(nil), env.Payload...), true, nil
}

// GetRaw returns the verified raw envelope bytes stored at (kind,
// address) — the wire form the /v1/store peer routes serve, so a
// receiving replica can re-verify checksum and identity itself. Like
// Get, a corrupt or misplaced entry is quarantined and reported absent.
func (s *Store) GetRaw(kind, address string) ([]byte, bool, error) {
	if !validKind(kind) {
		return nil, false, fmt.Errorf("store: invalid kind %q (want lowercase [a-z0-9-])", kind)
	}
	if !validAddr(address) {
		return nil, false, fmt.Errorf("store: invalid address %q (want 64 lowercase hex)", address)
	}
	path := filepath.Join(s.dir, layoutDir, kind, address[:2], address+".json")
	wl := s.writeLock(address)
	wl.Lock()
	env, raw, ok := readEnvelope(path)
	if ok && (env.Kind != kind || addr(env.Kind, env.Key) != address) {
		home, herr := s.entryPath(env.Kind, env.Key)
		ok = false
		if s.quarantine(path) {
			s.mu.Lock()
			s.dropTrackedLocked(path)
			if herr == nil && home != path {
				s.dropIfVanishedLocked(home)
			}
			s.mu.Unlock()
		}
	} else if !ok {
		if _, serr := os.Lstat(path); serr == nil && s.quarantine(path) {
			s.mu.Lock()
			s.dropTrackedLocked(path)
			s.mu.Unlock()
		}
	}
	wl.Unlock()
	if !ok {
		s.mu.Lock()
		s.stats.Misses++
		s.mu.Unlock()
		return nil, false, nil
	}
	s.mu.Lock()
	s.stats.DiskHits++
	s.adoptLocked(path, int64(len(raw)))
	s.mu.Unlock()
	return raw, true, nil
}

// Put stores payload (which must be valid JSON) under (kind, key),
// atomically: a reader — or a crash — can only ever observe the old
// complete entry or the new complete entry. Re-putting a byte-identical
// payload is a no-op. With a budget, Put evicts least-recently-used
// entries (never the one it just wrote) until the store fits. Like
// Get, the context is tracing-only; local writes always complete.
func (s *Store) Put(_ context.Context, kind, key string, payload []byte) error {
	path, err := s.entryPath(kind, key)
	if err != nil {
		return err
	}
	data, env, err := encodeEnvelope(kind, key, payload)
	if err != nil {
		return err
	}

	wl := s.writeLock(addr(kind, key))
	wl.Lock()
	defer wl.Unlock()
	if old, oldRaw, ok := readEnvelope(path); ok {
		if old.Kind == kind && old.Key == key && old.Checksum == env.Checksum {
			s.mu.Lock()
			s.stats.PutNoops++
			s.adoptLocked(path, int64(len(oldRaw)))
			if s.front != nil {
				s.stats.Evictions += s.front.put(kind+"\x00"+key, env.Payload)
			}
			s.mu.Unlock()
			return nil
		}
	}
	if err := writeAtomic(path, data); err != nil {
		return fmt.Errorf("store: write %s/%s: %w", kind, key, err)
	}
	s.mu.Lock()
	s.stats.Puts++
	s.adoptLocked(path, int64(len(data)))
	if s.front != nil {
		s.stats.Evictions += s.front.put(kind+"\x00"+key, env.Payload)
	}
	s.enforceBudgetLocked(path)
	s.mu.Unlock()
	return nil
}

// PutRaw verifies raw envelope bytes received from a peer (version,
// kind, payload checksum, and — when addrHint is non-empty — that the
// envelope's identity hashes to the address it was sent for) and stores
// the payload under its recorded identity via the normal Put path, so
// the file on disk is byte-identical to a locally computed one.
func (s *Store) PutRaw(kind, addrHint string, data []byte) error {
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return fmt.Errorf("store: raw entry is not an envelope: %w", err)
	}
	if env.Version != Version {
		return fmt.Errorf("store: raw entry has version %d, want %d", env.Version, Version)
	}
	if env.Kind != kind {
		return fmt.Errorf("store: raw entry kind %q does not match route kind %q", env.Kind, kind)
	}
	if env.Checksum != checksum(env.Payload) {
		return fmt.Errorf("store: raw entry checksum mismatch for %s/%s", env.Kind, env.Key)
	}
	if a := addr(env.Kind, env.Key); addrHint != "" && a != addrHint {
		return fmt.Errorf("store: raw entry identity hashes to %s, not %s", a, addrHint)
	}
	return s.Put(context.Background(), env.Kind, env.Key, env.Payload)
}

// writeAtomic writes data next to path and renames it into place. The
// temp name embeds tmpMarker so Open's sweep recognizes debris from a
// crashed writer.
func writeAtomic(path string, data []byte) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+tmpMarker+"*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if _, err := f.Write(data); err != nil {
		return cleanup(err)
	}
	// fsync before rename: on a crash the renamed entry must never be
	// an empty or partial file (the checksum would catch it, but a
	// verified write keeps the store warm across power loss too).
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Budget returns the configured disk budget in bytes (0 = unlimited).
func (s *Store) Budget() int64 { return s.budget }

// Name identifies the store as the local tier of a Backend chain.
func (s *Store) Name() string { return "local" }

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}
