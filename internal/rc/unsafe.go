package rc

// This file implements deliberately *incorrect* variants of the Figure 2
// algorithm. Section 3.1 of the paper justifies the two halves of the
// line 19 guard ("if |B| = 1 and R_A ≠ ⊥ then return R_A") by describing
// explicit schedules on which algorithms missing either half violate
// agreement. The variants below exist solely so the test suite and the
// examples/adversary program can replay those schedules and watch the
// violation happen — an executable form of the paper's necessity
// arguments. Never use them to actually solve consensus.

// Variant selects which (if any) guard of Figure 2 line 19 is removed.
type Variant int

const (
	// VariantPaper is the correct algorithm exactly as in Figure 2.
	VariantPaper Variant = iota
	// VariantNoYield removes lines 19–20 entirely: the lone team-B
	// process never defers to team A. Unsafe when q0 ∈ Q_A: after a
	// crash it can update O a second time from q0 and flip the winner
	// (the paper's first "bad scenario", defeated in the real algorithm
	// by Lemma 7 plus the yield rule).
	VariantNoYield
	// VariantYieldAlways drops the |B| = 1 test: every team-B process
	// defers when it sees R_A written. Unsafe when |B| > 1: one team-B
	// process can defer to A while another team-B process goes on to be
	// the first updater (the paper's second "bad scenario").
	VariantYieldAlways
)

// NewTeamConsensusVariant is NewTeamConsensus with a variant selector.
// Variants other than VariantPaper intentionally violate agreement on
// adversarial schedules; see the Variant constants.
func NewTeamConsensusVariant(tc *TeamConsensus, v Variant) *TeamConsensus {
	clone := *tc
	clone.variant = v
	return &clone
}

// yieldApplies reports whether this body should execute the line 19–20
// yield under the configured variant.
func (tc *TeamConsensus) yieldApplies() bool {
	switch tc.variant {
	case VariantNoYield:
		return false
	case VariantYieldAlways:
		return true
	default:
		return tc.sizeB == 1
	}
}
