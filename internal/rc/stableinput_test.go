package rc

import (
	"fmt"
	"testing"

	"rcons/internal/sim"
	"rcons/internal/types"
)

func TestStableInputFixedValues(t *testing.T) {
	alg := NewStableInput(NewCASConsensus(3, "c"), "si")
	inputs := []sim.Value{"x", "y", "z"}
	for seed := int64(0); seed < 100; seed++ {
		if _, err := Run(alg, inputs, sim.Config{Seed: seed, CrashProb: 0.25, MaxCrashes: 6}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestStableInputDriftingGenerator feeds a generator whose proposal
// changes every run and checks the transform pins the first registered
// proposal: the decision must be a *registered* value, and all decisions
// agree, even though un-transformed runs would have proposed different
// values after each crash.
func TestStableInputDriftingGenerator(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		alg := NewStableInput(NewCASConsensus(2, "c"), "si")
		m := sim.NewMemory()
		alg.Setup(m)
		bodies := make([]sim.Body, 2)
		for i := range bodies {
			i := i
			bodies[i] = alg.BodyFromGenerator(i, func(run int) sim.Value {
				return fmt.Sprintf("p%d-run%d", i, run)
			})
		}
		out, err := sim.NewRunner(m, bodies, sim.Config{Seed: seed, CrashProb: 0.35, MaxCrashes: 6}).Run()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Agreement.
		if out.Decisions[0] != out.Decisions[1] {
			t.Fatalf("seed %d: decisions diverge: %v", seed, out.Decisions)
		}
		// Validity against the registered (pinned) inputs.
		valid := false
		for i := 0; i < 2; i++ {
			if out.Decisions[0] == m.PeekRegister(fmt.Sprintf("si/in[%d]", i)) {
				valid = true
			}
		}
		if !valid {
			t.Fatalf("seed %d: decision %q is not a registered input (in[0]=%q in[1]=%q)",
				seed, out.Decisions[0],
				m.PeekRegister("si/in[0]"), m.PeekRegister("si/in[1]"))
		}
	}
}

// TestStableInputPinsFirstRunProposal forces a crash after the input
// register write and checks the second run keeps proposing the first
// run's value.
func TestStableInputPinsFirstRunProposal(t *testing.T) {
	alg := NewStableInput(NewCASConsensus(1, "c"), "si")
	m := sim.NewMemory()
	alg.Setup(m)
	body := alg.BodyFromGenerator(0, func(run int) sim.Value {
		return fmt.Sprintf("run%d", run)
	})
	// Steps of run 1: read in[0]=⊥, write in[0]=run1, CRASH. Run 2:
	// read in[0]=run1, then the CAS consensus (2 steps).
	script := []sim.Action{
		sim.Step(0), sim.Step(0), sim.Crash(0),
	}
	out, err := sim.NewRunner(m, []sim.Body{body}, sim.Config{Seed: 1, Script: script}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Decisions[0] != "run1" {
		t.Fatalf("decision = %q, want run1 (the pinned first-run proposal)", out.Decisions[0])
	}
}

// TestTournamentOverTnAtLevelNMinus2 exercises the other side of
// Proposition 19: although rcons(T_n) < cons(T_n) = n, the type is
// (n-2)-recording (Theorem 16), so n-2 processes CAN solve recoverable
// consensus with it. Executable: a 3-process tournament over T_5.
func TestTournamentOverTnAtLevelNMinus2(t *testing.T) {
	tn := types.NewTn(5)
	// Use the searched (n-2)-recording witness.
	w, err := searchRecordingForTest(tn, 3)
	if err != nil {
		t.Fatal(err)
	}
	if w == nil {
		t.Fatal("T_5 has no 3-recording witness, contradicting Theorem 16")
	}
	tr, err := NewTournament(tn, *w, 3, "tn")
	if err != nil {
		t.Fatal(err)
	}
	inputs := []sim.Value{"x", "y", "z"}
	for seed := int64(0); seed < 150; seed++ {
		if _, err := Run(tr, inputs, sim.Config{Seed: seed, CrashProb: 0.25, MaxCrashes: 6}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestTournamentInstanceInputPinning reproduces the Appendix F hazard:
// re-invoking a named RC instance with a DIFFERENT input after a crash
// must return the originally decided value. Without the pin registers in
// TournamentInstance.Decide this test (and the universal-construction
// crash sweeps) fail with agreement violations.
func TestTournamentInstanceInputPinning(t *testing.T) {
	inst, err := NewTournamentInstance(types.NewSn(2), snPaperWitness(2), 2)
	if err != nil {
		t.Fatal(err)
	}
	m := sim.NewMemory()
	m.AddRegister("sync", sim.None)
	var got []sim.Value
	body0 := func(p *sim.Proc) sim.Value {
		// First run proposes "old"; after the scripted crash the re-run
		// proposes "new". The decision must not change.
		input := sim.Value("old")
		if p.RunNumber() > 1 {
			input = "new"
		}
		v := inst.Decide(p, "inst", input)
		got = append(got, v)
		return v
	}
	body1 := func(p *sim.Proc) sim.Value {
		return inst.Decide(p, "inst", "theirs")
	}
	// Run p0 alone until it decides internally, then crash it at its
	// decide point so it re-runs with the drifted input.
	cfg := sim.Config{Seed: 3, DecideRequiresStep: true,
		Script: []sim.Action{
			sim.Step(0), sim.Step(0), sim.Step(0), sim.Step(0), sim.Step(0),
			sim.Step(0), sim.Crash(0),
		}}
	out, err := sim.NewRunner(m, []sim.Body{body0, body1}, cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Decisions[0] != out.Decisions[1] {
		t.Fatalf("instance decisions diverge: %v", out.Decisions)
	}
	if out.Decisions[0] == "new" {
		t.Fatalf("drifted input %q won; pinning failed", out.Decisions[0])
	}
}
