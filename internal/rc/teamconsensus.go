package rc

import (
	"fmt"

	"rcons/internal/checker"
	"rcons/internal/sim"
	"rcons/internal/spec"
	"rcons/internal/types"
)

// TeamConsensus is the Figure 2 algorithm: recoverable *team* consensus
// among the n processes of an n-recording witness, using one readable
// object O of the witnessed type plus one register per team.
//
// Preconditions (the caller's obligations, checked by NewTeamConsensus):
//
//   - the type is deterministic and readable;
//   - the witness satisfies Definition 4 (verified via the checker);
//   - all processes on the same team are given the same input value
//     (that is what makes it *team* consensus; Tournament lifts it to
//     full RC).
//
// The code below transcribes Figure 2 line by line. The paper's code
// assumes q0 ∉ Q_B; when instead q0 ∈ Q_B (and hence q0 ∉ Q_A, by
// condition 1), the roles of the two teams are swapped, exactly as the
// proof of Theorem 8 prescribes.
type TeamConsensus struct {
	typ     spec.Type
	witness checker.Witness
	ns      string

	qa, qb  map[spec.State]bool // Q sets for the *role* teams (post-swap)
	roleOf  []int               // role (roleA/roleB) of each process
	swapped bool                // true when witness teams were swapped
	sizeB   int                 // |B| in role terms (the paper's |B|)
	variant Variant             // VariantPaper unless built for a demo
}

const (
	roleA = 0
	roleB = 1
)

var _ Algorithm = (*TeamConsensus)(nil)

// NewTeamConsensus validates the witness and prepares the algorithm.
// ns namespaces the shared cells so that many instances can coexist in
// one memory (the tournament needs that).
func NewTeamConsensus(t spec.Type, w checker.Witness, ns string) (*TeamConsensus, error) {
	if !types.Readable(t) {
		return nil, fmt.Errorf("rc: Theorem 8 requires a readable type; %s is not readable", t.Name())
	}
	res, err := checker.VerifyRecording(t, w)
	if err != nil {
		return nil, fmt.Errorf("rc: verifying witness: %w", err)
	}
	if !res.OK {
		return nil, fmt.Errorf("rc: witness is not %d-recording: %s", w.N(), res.Reason)
	}
	qa, err := checker.QSet(t, w, checker.TeamA)
	if err != nil {
		return nil, err
	}
	qb, err := checker.QSet(t, w, checker.TeamB)
	if err != nil {
		return nil, err
	}

	tc := &TeamConsensus{typ: t, witness: w, ns: ns}
	// Figure 2 assumes q0 ∉ Q_B; otherwise swap the teams' roles.
	if qb[w.Q0] {
		tc.swapped = true
		tc.qa, tc.qb = qb, qa
	} else {
		tc.qa, tc.qb = qa, qb
	}
	tc.roleOf = make([]int, w.N())
	for i, team := range w.Teams {
		role := roleA
		if (team == checker.TeamB) != tc.swapped {
			role = roleB
		}
		tc.roleOf[i] = role
	}
	for _, r := range tc.roleOf {
		if r == roleB {
			tc.sizeB++
		}
	}
	return tc, nil
}

// Name implements Algorithm.
func (tc *TeamConsensus) Name() string {
	return fmt.Sprintf("team-consensus[%s]", tc.typ.Name())
}

// N implements Algorithm.
func (tc *TeamConsensus) N() int { return tc.witness.N() }

// RoleTeams returns, for each process, whether it plays the paper's team
// A (false) or team B (true) after any swap. Tests use it to construct
// admissible team inputs.
func (tc *TeamConsensus) RoleTeams() []bool {
	out := make([]bool, len(tc.roleOf))
	for i, r := range tc.roleOf {
		out[i] = r == roleB
	}
	return out
}

func (tc *TeamConsensus) objO() string { return tc.ns + "/O" }
func (tc *TeamConsensus) regA() string { return tc.ns + "/RA" }
func (tc *TeamConsensus) regB() string { return tc.ns + "/RB" }

// Setup implements Algorithm: object O in state q0, registers R_A and
// R_B initialized to ⊥ (Figure 2 lines 1–3).
func (tc *TeamConsensus) Setup(m *sim.Memory) {
	m.AddObject(tc.objO(), tc.typ, tc.witness.Q0)
	m.AddRegister(tc.regA(), sim.None)
	m.AddRegister(tc.regB(), sim.None)
}

// EnsureCells lazily creates the algorithm's shared cells from inside a
// body (idempotent). This lets constructions that mint RC instances
// dynamically — such as the universal construction's per-node next
// pointers — run team consensus without pre-registering every instance.
func (tc *TeamConsensus) EnsureCells(p *sim.Proc) {
	p.EnsureObject(tc.objO(), tc.typ, tc.witness.Q0)
	p.EnsureRegister(tc.regA(), sim.None)
	p.EnsureRegister(tc.regB(), sim.None)
}

// Body implements Algorithm, dispatching on the process's role.
func (tc *TeamConsensus) Body(i int, input sim.Value) sim.Body {
	op := tc.witness.Ops[i]
	if tc.roleOf[i] == roleA {
		return tc.bodyA(op, input)
	}
	return tc.bodyB(op, input)
}

// bodyA is Figure 2 lines 4–14 (process p_i on team A).
func (tc *TeamConsensus) bodyA(op spec.Op, v sim.Value) sim.Body {
	return func(p *sim.Proc) sim.Value {
		p.Write(tc.regA(), v)        // line 5:  R_A ← v
		q := p.ReadObject(tc.objO()) // line 6:  q ← O
		if q == tc.witness.Q0 {      // line 7:  if q = q0
			p.Apply(tc.objO(), op)      // line 8:  apply op_i to O
			q = p.ReadObject(tc.objO()) // line 9: q ← O
		}
		if tc.qa[q] { // line 11: if q ∈ Q_A
			return p.Read(tc.regA())
		}
		return p.Read(tc.regB()) // line 12
	}
}

// bodyB is Figure 2 lines 15–29 (process p_i on team B). The |B| = 1
// yielding rule of line 19 is what makes the algorithm safe when Q_A can
// return to q0; the package tests replay the paper's two "bad scenario"
// schedules to show both halves of the rule are necessary.
func (tc *TeamConsensus) bodyB(op spec.Op, v sim.Value) sim.Body {
	return func(p *sim.Proc) sim.Value {
		p.Write(tc.regB(), v)        // line 16: R_B ← v
		q := p.ReadObject(tc.objO()) // line 17: q ← O
		if q == tc.witness.Q0 {      // line 18: if q = q0
			if tc.yieldApplies() {
				if ra := p.Read(tc.regA()); ra != sim.None { // line 19
					return ra // line 20: return R_A
				}
				p.Apply(tc.objO(), op)      // line 22
				q = p.ReadObject(tc.objO()) // line 23
			} else {
				p.Apply(tc.objO(), op)      // line 22
				q = p.ReadObject(tc.objO()) // line 23
			}
		}
		if tc.qa[q] { // line 26: if q ∈ Q_A
			return p.Read(tc.regA())
		}
		return p.Read(tc.regB()) // line 27
	}
}

// TeamInputs builds an admissible input vector for the team consensus:
// every process on role-team A gets inputA, every process on role-team B
// gets inputB.
func (tc *TeamConsensus) TeamInputs(inputA, inputB sim.Value) []sim.Value {
	out := make([]sim.Value, tc.N())
	for i, r := range tc.roleOf {
		if r == roleA {
			out[i] = inputA
		} else {
			out[i] = inputB
		}
	}
	return out
}
