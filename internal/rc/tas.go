package rc

import (
	"fmt"

	"rcons/internal/sim"
	"rcons/internal/spec"
	"rcons/internal/types"
)

// TASConsensus is Herlihy's classical 2-process consensus from one
// test&set bit plus input registers. It is a *standard* consensus
// algorithm: correct under halting failures, but NOT recoverable — a
// process that wins the test&set, crashes before acting on the response,
// and retries will see the bit already set and wrongly conclude it lost.
// The lost response cannot be recovered because test&set's state does
// not record WHO set it: exactly the deficiency the paper's n-recording
// property formalizes (test&set is 2-discerning but not 2-recording).
//
// The model-checking experiment (E11) runs this algorithm twice: with a
// crash budget of zero the explorer proves it safe over the whole
// bounded schedule space; with a single crash allowed it finds an
// agreement violation automatically. That pair of verdicts is the
// paper's motivation, executable.
type TASConsensus struct {
	// NS namespaces the shared cells.
	NS string
}

var _ Algorithm = (*TASConsensus)(nil)

// NewTASConsensus returns the 2-process test&set consensus.
func NewTASConsensus(ns string) *TASConsensus { return &TASConsensus{NS: ns} }

// Name implements Algorithm.
func (t *TASConsensus) Name() string { return "tas-consensus" }

// N implements Algorithm: the algorithm is inherently 2-process
// (cons(test&set) = 2).
func (t *TASConsensus) N() int { return 2 }

func (t *TASConsensus) bit() string        { return t.NS + "/T" }
func (t *TASConsensus) inReg(i int) string { return fmt.Sprintf("%s/in[%d]", t.NS, i) }

// Setup implements Algorithm.
func (t *TASConsensus) Setup(m *sim.Memory) {
	m.AddObject(t.bit(), types.TestAndSet{}, "0")
	m.AddRegister(t.inReg(0), sim.None)
	m.AddRegister(t.inReg(1), sim.None)
}

// Body implements Algorithm: write the input, test&set, and decide own
// input on winning (response 0) or the opponent's on losing.
func (t *TASConsensus) Body(i int, input sim.Value) sim.Body {
	if i < 0 || i > 1 {
		panic(fmt.Sprintf("rc: tas-consensus supports processes 0 and 1, got %d", i))
	}
	return func(p *sim.Proc) sim.Value {
		p.Write(t.inReg(i), input)
		if r := p.Apply(t.bit(), spec.Op("tas")); r == "0" {
			return input // won the race
		}
		return p.Read(t.inReg(1 - i)) // lost: adopt the winner's input
	}
}

// TASInstance adapts the (non-recoverable!) test&set consensus into the
// Instance interface, for plugging into Figure 4 as its standard
// consensus building block. Theorem 1's transform needs only a standard
// consensus algorithm — the Round guard ensures each instance is
// accessed at most once per process under SIMULTANEOUS crashes, so even
// this non-recoverable algorithm composes safely there. Under
// INDEPENDENT crashes the same composition violates agreement (a process
// can crash inside an instance before recording its round and re-enter
// it), which experiment E11 demonstrates via exhaustive exploration:
// that contrast is precisely why the paper's independent-crash theory is
// needed.
type TASInstance struct{}

var _ Instance = TASInstance{}

// Decide implements Instance for two processes (0 and 1).
func (TASInstance) Decide(p *sim.Proc, name string, input sim.Value) sim.Value {
	i := p.ID()
	if i < 0 || i > 1 {
		panic(fmt.Sprintf("rc: tas-instance supports processes 0 and 1, got %d", i))
	}
	bit := name + "/T"
	mine := fmt.Sprintf("%s/in[%d]", name, i)
	theirs := fmt.Sprintf("%s/in[%d]", name, 1-i)
	p.EnsureObject(bit, types.TestAndSet{}, "0")
	p.EnsureRegister(mine, sim.None)
	p.EnsureRegister(theirs, sim.None)
	p.Write(mine, input)
	if r := p.Apply(bit, spec.Op("tas")); r == "0" {
		return input
	}
	return p.Read(theirs)
}
