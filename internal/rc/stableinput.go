package rc

import (
	"fmt"

	"rcons/internal/sim"
)

// StableInput implements the input-stabilization transform described in
// the paper's introduction: RC algorithms (and Golab's original
// definition) assume a process proposes the *same* input value across
// all of its runs. When an environment cannot guarantee that — e.g. a
// recovered process recomputes its proposal and gets a different value —
// the transform restores the precondition with one register per process:
// at the start of each run the process reads its input register and, if
// it is unwritten, writes its current proposal; thereafter it uses the
// register's value as its input, so all runs of the wrapped algorithm
// see the first run's proposal.
//
// The wrapped body receives its (possibly run-dependent) proposal from
// the provided generator rather than a fixed value, which is what makes
// the transform testable: the tests feed a generator that changes its
// answer every run and check agreement/validity against the set of
// *first-run* proposals.
type StableInput struct {
	// Alg is the wrapped RC algorithm.
	Alg Algorithm
	// NS namespaces the input registers.
	NS string
}

// NewStableInput wraps alg with the input-stabilization transform.
func NewStableInput(alg Algorithm, ns string) *StableInput {
	return &StableInput{Alg: alg, NS: ns}
}

// Name implements Algorithm.
func (s *StableInput) Name() string { return "stable-input[" + s.Alg.Name() + "]" }

// N implements Algorithm.
func (s *StableInput) N() int { return s.Alg.N() }

func (s *StableInput) inReg(i int) string { return fmt.Sprintf("%s/in[%d]", s.NS, i) }

// Setup implements Algorithm.
func (s *StableInput) Setup(m *sim.Memory) {
	s.Alg.Setup(m)
	for i := 0; i < s.N(); i++ {
		m.AddRegister(s.inReg(i), sim.None)
	}
}

// Body implements Algorithm with a fixed input (the common case): the
// register still guards against hypothetical input drift.
func (s *StableInput) Body(i int, input sim.Value) sim.Body {
	return s.BodyFromGenerator(i, func(run int) sim.Value { return input })
}

// BodyFromGenerator builds process i's code when its proposal may differ
// between runs: gen is called with the run number (1-based) at the start
// of every run to obtain that run's proposal, and the transform pins the
// first successfully registered one.
func (s *StableInput) BodyFromGenerator(i int, gen func(run int) sim.Value) sim.Body {
	return func(p *sim.Proc) sim.Value {
		v := p.Read(s.inReg(i))
		if v == sim.None {
			v = gen(p.RunNumber())
			p.Write(s.inReg(i), v)
		}
		return s.Alg.Body(i, v)(p)
	}
}
