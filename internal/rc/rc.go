// Package rc implements the paper's recoverable consensus (RC)
// algorithms — the primary contribution of "When Is Recoverable Consensus
// Harder Than Consensus?" (PODC 2022):
//
//   - TeamConsensus: the Figure 2 algorithm solving *recoverable team
//     consensus* from a single readable object of an n-recording type
//     plus two registers (the sufficiency half of the characterization,
//     Theorem 8);
//   - Tournament: the Appendix B reduction from recoverable team
//     consensus to full recoverable consensus (Proposition 30);
//   - SimultaneousRC: the Figure 4 / Appendix A transform showing RC is
//     exactly as hard as standard consensus under *simultaneous* crashes
//     (Theorem 1);
//   - CASConsensus: the classical compare&swap consensus, which is
//     natively recoverable and serves both as a baseline and as the
//     consensus building block inside the other constructions.
//
// All algorithms run on the package sim substrate; the recoverable
// wait-freedom, agreement and validity properties are checked on every
// execution by CheckOutcome.
package rc

import (
	"fmt"

	"rcons/internal/sim"
	"rcons/internal/spec"
	"rcons/internal/types"
)

// Algorithm is a recoverable consensus protocol for a fixed set of
// processes: Setup installs its shared cells into a memory, and Body
// yields process i's code for a given input value. Bodies must be safe to
// re-execute from the beginning after a crash — that is the whole point.
type Algorithm interface {
	// Name identifies the algorithm (for tables and traces).
	Name() string
	// N returns the number of processes the instance supports.
	N() int
	// Setup creates the algorithm's shared cells in m.
	Setup(m *sim.Memory)
	// Body returns the code process i runs to decide on input.
	Body(i int, input sim.Value) sim.Body
}

// CheckOutcome validates the two safety properties of recoverable
// consensus on a finished execution:
//
//   - agreement: all produced outputs are equal (the simulator guarantees
//     a process outputs at most once, so cross-run agreement is implied);
//   - validity: the common output is the input of some process.
//
// Recoverable wait-freedom is enforced by the simulator itself
// (sim.ErrRunBudget fails any run that exceeds its step bound).
func CheckOutcome(inputs []sim.Value, out *sim.Outcome) error {
	decided := ""
	have := false
	for i, ok := range out.Decided {
		if !ok {
			continue
		}
		d := out.Decisions[i]
		if !have {
			decided, have = d, true
			continue
		}
		if d != decided {
			return fmt.Errorf("rc: agreement violated: process %d decided %q, earlier decision was %q", i, d, decided)
		}
	}
	if !have {
		return nil // nothing decided (e.g. partial scripted execution)
	}
	for _, in := range inputs {
		if in == decided {
			return nil
		}
	}
	return fmt.Errorf("rc: validity violated: decision %q is not any process's input %v", decided, inputs)
}

// Run is a convenience harness: it sets up alg in a fresh memory, runs
// the bodies for the given inputs under cfg, and validates the outcome.
// It returns the outcome for further inspection.
func Run(alg Algorithm, inputs []sim.Value, cfg sim.Config) (*sim.Outcome, error) {
	if len(inputs) != alg.N() {
		return nil, fmt.Errorf("rc: %s wants %d inputs, got %d", alg.Name(), alg.N(), len(inputs))
	}
	m := sim.NewMemory()
	alg.Setup(m)
	bodies := make([]sim.Body, alg.N())
	for i := range bodies {
		bodies[i] = alg.Body(i, inputs[i])
	}
	out, err := sim.NewRunner(m, bodies, cfg).Run()
	if err != nil {
		return out, fmt.Errorf("rc: %s: %w", alg.Name(), err)
	}
	if err := CheckOutcome(inputs, out); err != nil {
		return out, fmt.Errorf("%s: %w", alg.Name(), err)
	}
	return out, nil
}

// Instance is a dynamically instantiable recoverable consensus object
// addressed by name, used by constructions that need unboundedly many RC
// instances (the universal construction's per-node next-pointers and the
// Figure 4 round objects). Decide must be idempotent across crashes of
// the calling process and linearizable across processes.
//
// Contract on input drift (the paper's Appendix F remark): a caller that
// crashes and recovers may re-invoke Decide on the same instance with a
// DIFFERENT input. Implementations must tolerate this — either because
// the decision mechanism is insensitive to later proposals (CASInstance:
// the object is write-once) or by pinning the first proposal in a
// per-(instance, process) register (TournamentInstance). Violating this
// contract breaks agreement; see the regression test
// universal.TestTournamentRCHeavyCrashStress.
//
// Values must not contain the characters ',' or ')' (they are carried
// inside operation encodings).
type Instance interface {
	// Decide proposes input to the named RC instance (created on first
	// use) and returns the agreed value.
	Decide(p *sim.Proc, name string, input sim.Value) sim.Value
}

// CASInstance implements Instance with one compare&swap object per
// consensus instance: propose by cas(⊥, input), then read the winner.
// Compare&swap retains its full consensus power under crashes — the
// checker shows it is n-recording for every n — so this is the canonical
// RC building block.
type CASInstance struct{}

var _ Instance = CASInstance{}

// Decide implements Instance.
func (CASInstance) Decide(p *sim.Proc, name string, input sim.Value) sim.Value {
	p.EnsureObject(name, types.NewCAS(), spec.State(types.Bottom))
	p.Apply(name, spec.FormatOp("cas", types.Bottom, input))
	return sim.Value(p.ReadObject(name))
}

// CASConsensus is the baseline Algorithm built on a single CAS object.
type CASConsensus struct {
	// Procs is the number of participating processes.
	Procs int
	// NS namespaces the shared object so instances can coexist.
	NS string
}

var _ Algorithm = (*CASConsensus)(nil)

// NewCASConsensus returns a CAS-based RC algorithm for n processes.
func NewCASConsensus(n int, ns string) *CASConsensus {
	return &CASConsensus{Procs: n, NS: ns}
}

// Name implements Algorithm.
func (c *CASConsensus) Name() string { return "cas-consensus" }

// N implements Algorithm.
func (c *CASConsensus) N() int { return c.Procs }

func (c *CASConsensus) objName() string { return c.NS + "/O" }

// Setup implements Algorithm.
func (c *CASConsensus) Setup(m *sim.Memory) {
	m.AddObject(c.objName(), types.NewCAS(), spec.State(types.Bottom))
}

// Body implements Algorithm. The algorithm is naturally recoverable: the
// CAS object is write-once, so re-executing after a crash either loses
// the race (reading the established winner) or finds its own earlier
// proposal installed.
func (c *CASConsensus) Body(i int, input sim.Value) sim.Body {
	return func(p *sim.Proc) sim.Value {
		p.Apply(c.objName(), spec.FormatOp("cas", types.Bottom, input))
		return sim.Value(p.ReadObject(c.objName()))
	}
}
