package rc

import (
	"fmt"
	"strconv"

	"rcons/internal/sim"
)

// SimultaneousRC is the Figure 4 / Appendix A algorithm: recoverable
// consensus in the *simultaneous* crash model built from an unbounded
// sequence of standard consensus instances C_1, C_2, … — the constructive
// half of Theorem 1 ("RC is solvable among n processes with simultaneous
// crashes iff cons(T) ≥ n").
//
// Each process p_j walks the rounds: in round r it consults C_r at most
// once (the Round[j] register guards against re-invocation after a
// crash, Lemma 27), records C_r's output in D[r], and terminates when no
// process has moved past round r (line 44). Rounds, and hence consensus
// instances, are materialized lazily, matching the paper's use of
// unboundedly many objects (footnote 2).
//
// The consensus instances are pluggable (Sub); the default CASInstance
// uses one compare&swap object per round. The algorithm is correct only
// under the Simultaneous failure model; the package tests also
// demonstrate, on an explicit schedule, how *independent* crashes break
// it — which is precisely why the paper's main sections are needed.
type SimultaneousRC struct {
	// Procs is the number of participating processes.
	Procs int
	// NS namespaces the shared cells.
	NS string
	// Sub supplies the per-round standard consensus instances.
	Sub Instance
}

var _ Algorithm = (*SimultaneousRC)(nil)

// NewSimultaneousRC returns the Figure 4 algorithm for n processes using
// CAS-based consensus instances.
func NewSimultaneousRC(n int, ns string) *SimultaneousRC {
	return &SimultaneousRC{Procs: n, NS: ns, Sub: CASInstance{}}
}

// Name implements Algorithm.
func (s *SimultaneousRC) Name() string { return "simultaneous-rc" }

// N implements Algorithm.
func (s *SimultaneousRC) N() int { return s.Procs }

func (s *SimultaneousRC) roundReg(j int) string { return fmt.Sprintf("%s/Round[%d]", s.NS, j) }
func (s *SimultaneousRC) dReg(r int) string     { return fmt.Sprintf("%s/D[%d]", s.NS, r) }
func (s *SimultaneousRC) consName(r int) string { return fmt.Sprintf("%s/C[%d]", s.NS, r) }

// Setup implements Algorithm: Round[1..n] registers initialized to 0
// (line 31); the D array and the consensus instances are allocated
// lazily by the bodies.
func (s *SimultaneousRC) Setup(m *sim.Memory) {
	for j := 0; j < s.Procs; j++ {
		m.AddRegister(s.roundReg(j), "0")
	}
}

// Body implements Algorithm, transcribing Figure 4 lines 33–52 for
// process p_j.
func (s *SimultaneousRC) Body(j int, input sim.Value) sim.Body {
	return func(p *sim.Proc) sim.Value {
		pref := input       // line 34
		for r := 1; ; r++ { // lines 35–36, 50
			p.EnsureRegister(s.dReg(r), sim.None)
			myRound, err := strconv.Atoi(p.Read(s.roundReg(j))) // line 37
			if err != nil {
				panic(fmt.Sprintf("rc: corrupt Round[%d]: %v", j, err))
			}
			if myRound < r {
				p.Write(s.roundReg(j), strconv.Itoa(r)) // line 38
				if r > 1 {                              // line 39
					if d := p.Read(s.dReg(r - 1)); d != sim.None {
						pref = d // line 40
					}
				}
				pref = s.Sub.Decide(p, s.consName(r), pref) // line 42
				p.Write(s.dReg(r), pref)                    // line 43
				all := true                                 // line 44: if ∀k, Round[k] ≤ r
				for k := 0; k < s.Procs; k++ {
					rk, err := strconv.Atoi(p.Read(s.roundReg(k)))
					if err != nil {
						panic(fmt.Sprintf("rc: corrupt Round[%d]: %v", k, err))
					}
					if rk > r {
						all = false
						break
					}
				}
				if all {
					return pref // line 45
				}
			} else if r > 1 { // line 47
				if d := p.Read(s.dReg(r - 1)); d != sim.None {
					pref = d // line 48
				}
			}
		}
	}
}
