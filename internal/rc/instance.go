package rc

import (
	"fmt"
	"sync"

	"rcons/internal/checker"
	"rcons/internal/sim"
	"rcons/internal/spec"
)

// TournamentInstance adapts the Appendix B tournament into the Instance
// interface, so constructions that need dynamically-minted RC instances
// (notably the universal construction's per-node next pointers) can run
// on *any* readable n-recording type — not just compare&swap. Each named
// instance lazily materializes a full tournament (team-consensus objects
// and registers) under that name.
//
// The calling process's simulator ID selects its position in the
// tournament, so an instance built from an n-recording witness serves
// processes 0 … k-1 with k ≤ n.
type TournamentInstance struct {
	typ spec.Type
	w   checker.Witness
	k   int

	mu    sync.Mutex // guards cache: body preludes run concurrently
	cache map[string]*Tournament
}

var _ Instance = (*TournamentInstance)(nil)

// NewTournamentInstance validates the witness once and returns the
// instance factory for k processes.
func NewTournamentInstance(t spec.Type, w checker.Witness, k int) (*TournamentInstance, error) {
	// Build a throwaway tournament to validate witness and sizes early.
	if _, err := NewTournament(t, w, k, "probe"); err != nil {
		return nil, err
	}
	return &TournamentInstance{typ: t, w: w, k: k, cache: map[string]*Tournament{}}, nil
}

// Decide implements Instance. The cache is mutex-guarded: the scheduler
// serializes bodies between scheduling points, but the stretch of a body
// before its first shared-memory access runs concurrently with other
// processes' preludes, and Decide can be reached inside one.
//
// Input pinning (the paper's Appendix F remark): a caller that crashes
// and recovers may re-invoke Decide on the SAME instance with a
// DIFFERENT input — in the universal construction the helped pointer can
// change between retries. The tournament's agreement-across-runs
// guarantee assumes stable inputs, so Decide first pins the caller's
// input in a per-(instance, process) register (the introduction's input
// transform) and runs the tournament on the pinned value. Without this,
// agreement genuinely breaks: the repository's crash-sweep benchmark
// found executions where a recovered helper flipped an already-decided
// next pointer, double-appending a node.
func (ti *TournamentInstance) Decide(p *sim.Proc, name string, input sim.Value) sim.Value {
	ti.mu.Lock()
	tr, ok := ti.cache[name]
	if !ok {
		var err error
		tr, err = NewTournament(ti.typ, ti.w, ti.k, name)
		if err != nil {
			// The constructor was validated in NewTournamentInstance;
			// failure here is a programming error.
			ti.mu.Unlock()
			panic(fmt.Sprintf("rc: tournament instance %q: %v", name, err))
		}
		ti.cache[name] = tr
	}
	ti.mu.Unlock()
	tr.EnsureCells(p)
	pin := fmt.Sprintf("%s/pin[%d]", name, p.ID())
	p.EnsureRegister(pin, sim.None)
	v := p.Read(pin)
	if v == sim.None {
		v = input
		p.Write(pin, v)
	}
	return tr.Body(p.ID(), v)(p)
}
