package rc

import (
	"fmt"
	"strings"
	"testing"

	"rcons/internal/checker"
	"rcons/internal/sim"
	"rcons/internal/spec"
	"rcons/internal/types"
)

// casWitness builds an n-recording witness for compare&swap: q0 = ⊥,
// team A = processes 0..a-1 proposing distinct values, team B = the rest.
func casWitness(a, n int) checker.Witness {
	w := checker.Witness{Q0: spec.State(types.Bottom)}
	for i := 0; i < n; i++ {
		team := checker.TeamA
		if i >= a {
			team = checker.TeamB
		}
		w.Teams = append(w.Teams, team)
		w.Ops = append(w.Ops, spec.FormatOp("cas", types.Bottom, fmt.Sprintf("v%d", i)))
	}
	return w
}

// snPaperWitness is the Proposition 21 witness for S_n.
func snPaperWitness(n int) checker.Witness {
	w := checker.Witness{Q0: types.SnInitial, Teams: []int{checker.TeamA}, Ops: []spec.Op{"opA"}}
	for i := 1; i < n; i++ {
		w.Teams = append(w.Teams, checker.TeamB)
		w.Ops = append(w.Ops, "opB")
	}
	return w
}

func TestCheckOutcome(t *testing.T) {
	ok := &sim.Outcome{Decisions: []sim.Value{"a", "a"}, Decided: []bool{true, true}}
	if err := CheckOutcome([]sim.Value{"a", "b"}, ok); err != nil {
		t.Errorf("valid outcome rejected: %v", err)
	}
	dis := &sim.Outcome{Decisions: []sim.Value{"a", "b"}, Decided: []bool{true, true}}
	if err := CheckOutcome([]sim.Value{"a", "b"}, dis); err == nil {
		t.Error("agreement violation not detected")
	}
	inv := &sim.Outcome{Decisions: []sim.Value{"z", "z"}, Decided: []bool{true, true}}
	if err := CheckOutcome([]sim.Value{"a", "b"}, inv); err == nil {
		t.Error("validity violation not detected")
	}
	partial := &sim.Outcome{Decisions: []sim.Value{"a", ""}, Decided: []bool{true, false}}
	if err := CheckOutcome([]sim.Value{"a", "b"}, partial); err != nil {
		t.Errorf("partial outcome rejected: %v", err)
	}
}

func TestCASConsensusUnderCrashes(t *testing.T) {
	for n := 2; n <= 5; n++ {
		alg := NewCASConsensus(n, "t")
		inputs := make([]sim.Value, n)
		for i := range inputs {
			inputs[i] = fmt.Sprintf("v%d", i)
		}
		for seed := int64(0); seed < 200; seed++ {
			if _, err := Run(alg, inputs, sim.Config{Seed: seed, CrashProb: 0.25, MaxCrashes: 2 * n}); err != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, err)
			}
		}
	}
}

func TestTeamConsensusCASWitness(t *testing.T) {
	// No-swap instance: q0 = ⊥ is never revisited for CAS, and with
	// |A| = 2, |B| = 2 the non-yield branch is exercised.
	w := casWitness(2, 4)
	tc, err := NewTeamConsensus(types.NewCAS(), w, "t")
	if err != nil {
		t.Fatal(err)
	}
	inputs := tc.TeamInputs("alpha", "beta")
	for seed := int64(0); seed < 300; seed++ {
		if _, err := Run(tc, inputs, sim.Config{Seed: seed, CrashProb: 0.25, MaxCrashes: 8}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestTeamConsensusSnWitnessSwapAndYield(t *testing.T) {
	// For S_n's paper witness q0 = (B,0) ∈ Q_B, so NewTeamConsensus must
	// swap the roles, leaving the lone opA process as the paper's team B
	// (|B| = 1) and exercising the yield rule of line 19.
	for n := 2; n <= 5; n++ {
		sn := types.NewSn(n)
		tc, err := NewTeamConsensus(sn, snPaperWitness(n), "t")
		if err != nil {
			t.Fatal(err)
		}
		if !tc.swapped {
			t.Fatalf("S_%d: expected a team swap (q0 ∈ Q_B)", n)
		}
		if tc.sizeB != 1 {
			t.Fatalf("S_%d: role-team B size = %d, want 1", n, tc.sizeB)
		}
		inputs := tc.TeamInputs("alpha", "beta")
		for seed := int64(0); seed < 200; seed++ {
			if _, err := Run(tc, inputs, sim.Config{Seed: seed, CrashProb: 0.3, MaxCrashes: 2 * n}); err != nil {
				t.Fatalf("S_%d seed %d: %v", n, seed, err)
			}
		}
	}
}

func TestTeamConsensusDecidesFirstUpdaterTeam(t *testing.T) {
	// Deterministic schedule: team B's first member updates O first, so
	// everyone must decide team B's input.
	w := casWitness(2, 4)
	tc, err := NewTeamConsensus(types.NewCAS(), w, "t")
	if err != nil {
		t.Fatal(err)
	}
	inputs := tc.TeamInputs("alpha", "beta")
	// Process 2 (team B) runs alone to completion first: write R_B, read
	// O = q0, apply op, read O, read R_B — five steps.
	script := []sim.Action{
		sim.Step(2), sim.Step(2), sim.Step(2), sim.Step(2), sim.Step(2),
	}
	out, err := Run(tc, inputs, sim.Config{Seed: 9, Script: script})
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range out.Decisions {
		if d != "beta" {
			t.Fatalf("process %d decided %q, want beta", i, d)
		}
	}
}

func TestTeamConsensusRejectsNonReadable(t *testing.T) {
	w := checker.Witness{
		Q0:    "",
		Teams: []int{checker.TeamA, checker.TeamB},
		Ops:   []spec.Op{"push(0)", "push(1)"},
	}
	if _, err := NewTeamConsensus(types.NewStack(4), w, "t"); err == nil {
		t.Fatal("non-readable stack accepted by Theorem 8 construction")
	}
}

func TestTeamConsensusRejectsBadWitness(t *testing.T) {
	// Register witnesses are never 2-recording.
	w := checker.Witness{
		Q0:    spec.State(types.Bottom),
		Teams: []int{checker.TeamA, checker.TeamB},
		Ops:   []spec.Op{"write(0)", "write(1)"},
	}
	if _, err := NewTeamConsensus(types.NewRegister(), w, "t"); err == nil {
		t.Fatal("non-recording witness accepted")
	}
}

func TestTournamentFullRCOverSn(t *testing.T) {
	// The headline executable claim: rcons(S_n) ≥ n — full recoverable
	// consensus among n processes with *arbitrary* (non-team) inputs,
	// using only S_n objects and registers, under independent crashes.
	for n := 2; n <= 4; n++ {
		sn := types.NewSn(n)
		tr, err := NewTournament(sn, snPaperWitness(n), n, "t")
		if err != nil {
			t.Fatal(err)
		}
		inputs := make([]sim.Value, n)
		for i := range inputs {
			inputs[i] = fmt.Sprintf("v%d", i)
		}
		for seed := int64(0); seed < 200; seed++ {
			if _, err := Run(tr, inputs, sim.Config{Seed: seed, CrashProb: 0.25, MaxCrashes: 2 * n}); err != nil {
				t.Fatalf("S_%d seed %d: %v", n, seed, err)
			}
		}
	}
}

func TestTournamentOverCAS(t *testing.T) {
	w := casWitness(3, 6)
	for k := 1; k <= 6; k++ {
		tr, err := NewTournament(types.NewCAS(), w, k, "t")
		if err != nil {
			t.Fatal(err)
		}
		inputs := make([]sim.Value, k)
		for i := range inputs {
			inputs[i] = fmt.Sprintf("v%d", i)
		}
		for seed := int64(0); seed < 100; seed++ {
			if _, err := Run(tr, inputs, sim.Config{Seed: seed, CrashProb: 0.2, MaxCrashes: 6}); err != nil {
				t.Fatalf("k=%d seed=%d: %v", k, seed, err)
			}
		}
	}
}

func TestTournamentSizeBounds(t *testing.T) {
	w := casWitness(1, 3)
	if _, err := NewTournament(types.NewCAS(), w, 0, "t"); err == nil {
		t.Error("k = 0 accepted")
	}
	if _, err := NewTournament(types.NewCAS(), w, 4, "t"); err == nil {
		t.Error("k > n accepted")
	}
}

func TestSimultaneousRCNoCrashes(t *testing.T) {
	for n := 2; n <= 5; n++ {
		alg := NewSimultaneousRC(n, "t")
		inputs := make([]sim.Value, n)
		for i := range inputs {
			inputs[i] = fmt.Sprintf("v%d", i)
		}
		for seed := int64(0); seed < 100; seed++ {
			if _, err := Run(alg, inputs, sim.Config{Seed: seed, Model: sim.Simultaneous}); err != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, err)
			}
		}
	}
}

func TestSimultaneousRCUnderSystemCrashes(t *testing.T) {
	for n := 2; n <= 4; n++ {
		alg := NewSimultaneousRC(n, "t")
		inputs := make([]sim.Value, n)
		for i := range inputs {
			inputs[i] = fmt.Sprintf("v%d", i)
		}
		for seed := int64(0); seed < 200; seed++ {
			cfg := sim.Config{Seed: seed, Model: sim.Simultaneous, CrashProb: 0.1, MaxCrashes: 3}
			if _, err := Run(alg, inputs, cfg); err != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, err)
			}
		}
	}
}

func TestSimultaneousRCScriptedCrashAll(t *testing.T) {
	alg := NewSimultaneousRC(3, "t")
	inputs := []sim.Value{"x", "y", "z"}
	script := []sim.Action{
		sim.Step(0), sim.Step(1), sim.CrashAll(),
		sim.Step(2), sim.Step(2), sim.CrashAll(),
	}
	if _, err := Run(alg, inputs, sim.Config{Seed: 3, Model: sim.Simultaneous, Script: script}); err != nil {
		t.Fatal(err)
	}
}

// TestBadScenarioYieldWithoutSizeCheck replays the paper's §3.1 schedule
// showing why line 19 must test |B| = 1: with the test removed
// (VariantYieldAlways) and |B| = 2, one team-B process defers to team A
// while another team-B process becomes the first updater — agreement
// breaks exactly as the paper describes.
func TestBadScenarioYieldWithoutSizeCheck(t *testing.T) {
	w := casWitness(1, 3) // A = {p0}, B = {p1, p2}
	tc, err := NewTeamConsensus(types.NewCAS(), w, "t")
	if err != nil {
		t.Fatal(err)
	}
	broken := NewTeamConsensusVariant(tc, VariantYieldAlways)
	inputs := broken.TeamInputs("vA", "vB")
	script := []sim.Action{
		// p1 (team B): writes R_B, reads O = q0, reads R_A = ⊥ — poised
		// to update O at line 22.
		sim.Step(1), sim.Step(1), sim.Step(1),
		// p0 (team A) writes R_A.
		sim.Step(0),
		// p2 (team B) sees R_A ≠ ⊥ and decides R_A (line 20).
		sim.Step(2), sim.Step(2), sim.Step(2),
		// p1 resumes: updates O (the FIRST update!), reads O ∈ Q_B,
		// decides R_B. Agreement is now violated (p2 decided vA).
		sim.Step(1), sim.Step(1), sim.Step(1),
	}
	_, err = Run(broken, inputs, sim.Config{Seed: 1, Script: script})
	if err == nil || !strings.Contains(err.Error(), "agreement") {
		t.Fatalf("expected an agreement violation, got %v", err)
	}
}

// TestGoodScenarioSizeCheckSaves runs the same schedule against the real
// algorithm: with |B| = 2 the yield branch is dead, p2 does not defer,
// and agreement holds (the script is truncated where the real control
// flow diverges; random fair scheduling finishes the run).
func TestGoodScenarioSizeCheckSaves(t *testing.T) {
	w := casWitness(1, 3)
	tc, err := NewTeamConsensus(types.NewCAS(), w, "t")
	if err != nil {
		t.Fatal(err)
	}
	inputs := tc.TeamInputs("vA", "vB")
	script := []sim.Action{
		sim.Step(1), sim.Step(1), // p1: write R_B, read O (no R_A read: |B| > 1)
		sim.Step(0),              // p0: write R_A
		sim.Step(2), sim.Step(2), // p2: write R_B, read O = q0 — must update, not defer
	}
	if _, err := Run(tc, inputs, sim.Config{Seed: 5, Script: script}); err != nil {
		t.Fatal(err)
	}
}

// TestBadScenarioNoYield replays the other §3.1 schedule, on S_2, showing
// why the yield rule must exist at all when q0 ∈ Q_A and |B| = 1: the
// lone team-B process updates O, crashes (losing the response), finds O
// back in state q0 after team A's updates, and — without lines 19–20 —
// updates again, flipping the recorded winner.
func TestBadScenarioNoYield(t *testing.T) {
	sn := types.NewSn(2)
	tc, err := NewTeamConsensus(sn, snPaperWitness(2), "t")
	if err != nil {
		t.Fatal(err)
	}
	if !tc.swapped || tc.sizeB != 1 {
		t.Fatalf("test setup: expected swapped roles with |B| = 1")
	}
	broken := NewTeamConsensusVariant(tc, VariantNoYield)
	inputs := broken.TeamInputs("vA", "vB")
	// Witness process 0 runs opA and plays role B after the swap;
	// witness process 1 runs opB and plays role A.
	script := []sim.Action{
		// p0 (role B, no yield): write R_B, read O = q0 — poised at the
		// update of line 22.
		sim.Step(0), sim.Step(0),
		// p1 (role A): full run — writes R_A, reads q0, applies opB
		// (FIRST update, O = (B,1) ∈ Q_A), reads O, reads R_A, decides vA.
		sim.Step(1), sim.Step(1), sim.Step(1), sim.Step(1), sim.Step(1),
		// p0 resumes: applies opA at (B,1) → O returns to q0 = (B,0);
		// then crashes, losing all local state.
		sim.Step(0), sim.Crash(0),
		// p0 re-runs: write R_B, read O = q0, apply opA AGAIN → (A,0) ∈
		// Q_B, read O, read R_B → decides vB. Agreement violated.
		sim.Step(0), sim.Step(0), sim.Step(0), sim.Step(0), sim.Step(0),
	}
	_, err = Run(broken, inputs, sim.Config{Seed: 1, Script: script})
	if err == nil || !strings.Contains(err.Error(), "agreement") {
		t.Fatalf("expected an agreement violation, got %v", err)
	}
}

// TestGoodScenarioYieldSaves runs the crash schedule against the real
// algorithm: on recovery the lone team-B process sees R_A ≠ ⊥ at line 19
// and yields, deciding team A's value.
func TestGoodScenarioYieldSaves(t *testing.T) {
	sn := types.NewSn(2)
	tc, err := NewTeamConsensus(sn, snPaperWitness(2), "t")
	if err != nil {
		t.Fatal(err)
	}
	inputs := tc.TeamInputs("vA", "vB")
	script := []sim.Action{
		// p0 (role B): write R_B, read O = q0, read R_A = ⊥ — poised.
		sim.Step(0), sim.Step(0), sim.Step(0),
		// p1 (role A): full run, decides vA.
		sim.Step(1), sim.Step(1), sim.Step(1), sim.Step(1), sim.Step(1),
		// p0: applies opA (O returns to q0), crashes.
		sim.Step(0), sim.Crash(0),
		// p0 re-runs: write R_B, read O = q0, read R_A = vA ≠ ⊥ →
		// yields: decides vA. Agreement preserved.
		sim.Step(0), sim.Step(0), sim.Step(0),
	}
	out, err := Run(tc, inputs, sim.Config{Seed: 1, Script: script})
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range out.Decisions {
		if d != "vA" {
			t.Fatalf("process %d decided %q, want vA", i, d)
		}
	}
}

// TestSimultaneousAlgorithmBreaksUnderIndependentCrashes documents that
// Figure 4 is sound only in its own failure model, which is the reason
// the paper's independent-crash results are non-trivial. Under
// independent crashes a process that crashes mid-round re-reads D of an
// earlier round while others advance; with CAS sub-consensus the
// algorithm happens to stay safe, so instead we check a weaker but
// still meaningful property: the round guard prevents double proposals.
func TestSimultaneousRoundGuard(t *testing.T) {
	alg := NewSimultaneousRC(2, "t")
	inputs := []sim.Value{"x", "y"}
	// Crash p0 repeatedly mid-round; Round[0] must never decrease and
	// the execution must still satisfy agreement + validity.
	script := []sim.Action{
		sim.Step(0), sim.Step(0), sim.Step(0), sim.Crash(0),
		sim.Step(0), sim.Step(0), sim.Crash(0),
	}
	if _, err := Run(alg, inputs, sim.Config{Seed: 2, Script: script}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsWrongInputCount(t *testing.T) {
	alg := NewCASConsensus(3, "t")
	if _, err := Run(alg, []sim.Value{"a"}, sim.Config{Seed: 1}); err == nil {
		t.Fatal("wrong input count accepted")
	}
}

func TestCASInstanceIdempotentAcrossCrashes(t *testing.T) {
	m := sim.NewMemory()
	inst := CASInstance{}
	var got []sim.Value
	body := func(p *sim.Proc) sim.Value {
		v := inst.Decide(p, "cons/1", "mine")
		got = append(got, v)
		return v
	}
	cfg := sim.Config{Script: []sim.Action{sim.Step(0), sim.Crash(0)}}
	out, err := sim.NewRunner(m, []sim.Body{body}, cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Decisions[0] != "mine" {
		t.Fatalf("decision = %q", out.Decisions[0])
	}
}

// searchRecordingForTest avoids importing checker in multiple test files
// directly; it simply forwards to the checker search.
func searchRecordingForTest(t spec.Type, n int) (*checker.Witness, error) {
	return checker.SearchRecording(t, n, nil)
}

func TestTASConsensusSafeWithoutCrashes(t *testing.T) {
	alg := NewTASConsensus("tas")
	inputs := []sim.Value{"x", "y"}
	for seed := int64(0); seed < 100; seed++ {
		if _, err := Run(alg, inputs, sim.Config{Seed: seed}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestTASConsensusBreaksUnderCrash replays the canonical violation: the
// test&set winner crashes at its decide point, retries, reads the bit as
// already set, and adopts the loser's... opponent's value, while the
// other process adopts the crashed winner's value.
func TestTASConsensusBreaksUnderCrash(t *testing.T) {
	alg := NewTASConsensus("tas")
	inputs := []sim.Value{"x", "y"}
	m := sim.NewMemory()
	alg.Setup(m)
	bodies := []sim.Body{alg.Body(0, inputs[0]), alg.Body(1, inputs[1])}
	script := []sim.Action{
		// p0: write in[0], tas (wins), crash at the decide point.
		sim.Step(0), sim.Step(0), sim.Crash(0),
		// p1: write in[1], tas (loses), read in[0] → decides "x", decide step.
		sim.Step(1), sim.Step(1), sim.Step(1), sim.Step(1),
		// p0 re-runs: write in[0], tas → sees 1, reads in[1] → decides "y".
		sim.Step(0), sim.Step(0), sim.Step(0), sim.Step(0),
	}
	cfg := sim.Config{Seed: 1, Script: script, DecideRequiresStep: true}
	out, err := sim.NewRunner(m, bodies, cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckOutcome(inputs, out); err == nil {
		t.Fatalf("expected an agreement violation, decisions = %v", out.Decisions)
	}
}

func TestTASConsensusRejectsBadIndex(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("index 2 accepted")
		}
	}()
	NewTASConsensus("tas").Body(2, "x")
}
