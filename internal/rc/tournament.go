package rc

import (
	"fmt"

	"rcons/internal/checker"
	"rcons/internal/sim"
	"rcons/internal/spec"
)

// Tournament is the Appendix B construction (Proposition 30): full
// recoverable consensus for k processes built recursively from
// recoverable team consensus instances over an n-recording witness
// (k ≤ n). Each level splits its processes into two groups whose sizes
// fit inside the witness's teams, solves RC recursively within each
// group, and feeds the group decisions into a TeamConsensus instance —
// whose precondition (equal inputs within each team) is guaranteed by the
// recursive agreement property, including across crash-induced re-runs.
type Tournament struct {
	typ     spec.Type
	witness checker.Witness
	k       int
	ns      string

	sub   [2]*Tournament // nil at leaves
	tc    *TeamConsensus
	group []int // group (0 or 1) of each of the k processes
	tcIdx []int // witness process index each process plays in tc
}

var _ Algorithm = (*Tournament)(nil)

// NewTournament builds a k-process RC algorithm from an n-recording
// witness for readable type t (k ≤ n; k ≥ 1).
func NewTournament(t spec.Type, w checker.Witness, k int, ns string) (*Tournament, error) {
	if k < 1 || k > w.N() {
		return nil, fmt.Errorf("rc: tournament size %d out of range 1..%d", k, w.N())
	}
	tr := &Tournament{typ: t, witness: w, k: k, ns: ns}
	if k == 1 {
		return tr, nil
	}

	// Split k processes into groups of sizes a ≤ |A| and b ≤ |B|.
	sizeA := w.TeamSize(checker.TeamA)
	sizeB := w.TeamSize(checker.TeamB)
	a := min(sizeA, k-1)
	b := k - a
	if b > sizeB {
		return nil, fmt.Errorf("rc: cannot split %d processes into teams of ≤%d and ≤%d", k, sizeA, sizeB)
	}

	tc, err := NewTeamConsensus(t, w, ns+"/tc")
	if err != nil {
		return nil, err
	}
	tr.tc = tc

	// Assign the first a processes to group 0 (playing witness team A
	// members) and the rest to group 1 (playing witness team B members).
	membersA := w.Members(checker.TeamA)
	membersB := w.Members(checker.TeamB)
	tr.group = make([]int, k)
	tr.tcIdx = make([]int, k)
	for i := 0; i < a; i++ {
		tr.group[i] = 0
		tr.tcIdx[i] = membersA[i]
	}
	for i := a; i < k; i++ {
		tr.group[i] = 1
		tr.tcIdx[i] = membersB[i-a]
	}

	sub0, err := NewTournament(t, w, a, ns+"/0")
	if err != nil {
		return nil, err
	}
	sub1, err := NewTournament(t, w, b, ns+"/1")
	if err != nil {
		return nil, err
	}
	tr.sub = [2]*Tournament{sub0, sub1}
	return tr, nil
}

// Name implements Algorithm.
func (tr *Tournament) Name() string {
	return fmt.Sprintf("tournament[%s,k=%d]", tr.typ.Name(), tr.k)
}

// N implements Algorithm.
func (tr *Tournament) N() int { return tr.k }

// Setup implements Algorithm: recursively creates every level's cells.
func (tr *Tournament) Setup(m *sim.Memory) {
	if tr.k == 1 {
		return
	}
	tr.tc.Setup(m)
	tr.sub[0].Setup(m)
	tr.sub[1].Setup(m)
}

// EnsureCells lazily creates every level's shared cells from inside a
// body (idempotent); see TeamConsensus.EnsureCells.
func (tr *Tournament) EnsureCells(p *sim.Proc) {
	if tr.k == 1 {
		return
	}
	tr.tc.EnsureCells(p)
	tr.sub[0].EnsureCells(p)
	tr.sub[1].EnsureCells(p)
}

// Body implements Algorithm. Process i (0 ≤ i < k) first agrees within
// its group, then plays its assigned witness process in the top-level
// team consensus. On a crash the whole chain re-runs; the sub-level's
// agreement property makes the team-consensus input identical across
// runs, which is exactly the argument in the proof of Proposition 30.
func (tr *Tournament) Body(i int, input sim.Value) sim.Body {
	if tr.k == 1 {
		return func(*sim.Proc) sim.Value { return input }
	}
	g := tr.group[i]
	// Index of process i within its group.
	idx := 0
	for j := 0; j < i; j++ {
		if tr.group[j] == g {
			idx++
		}
	}
	subBody := tr.sub[g].Body(idx, input)
	tcRole := tr.tcIdx[i]
	return func(p *sim.Proc) sim.Value {
		groupValue := subBody(p)
		return tr.tc.Body(tcRole, groupValue)(p)
	}
}

// TCWitnessRoleB exposes whether witness process idx plays role B in the
// top-level team consensus (after any q0 ∈ Q_B swap); used by tests.
func (tr *Tournament) TCWitnessRoleB(i int) bool {
	if tr.k == 1 {
		return false
	}
	return tr.tc.RoleTeams()[tr.tcIdx[i]]
}
