package explore

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"rcons/internal/checker"
	"rcons/internal/rc"
	"rcons/internal/sim"
	"rcons/internal/spec"
	"rcons/internal/types"
	"rcons/internal/universal"
)

// depth trims exploration bounds in -short mode: every added level
// multiplies the schedule space, so the short suite explores a couple of
// levels less and finishes in seconds while the full run keeps the
// original depth.
func depth(short, full int) int {
	if testing.Short() {
		return short
	}
	return full
}

// snWitness2 is the Proposition 21 witness for S_2.
func snWitness2() checker.Witness {
	return checker.Witness{
		Q0:    types.SnInitial,
		Teams: []int{checker.TeamA, checker.TeamB},
		Ops:   []spec.Op{"opA", "opB"},
	}
}

// tcFactory builds fresh Figure 2 instances for exploration.
func tcFactory(t *testing.T, typ spec.Type, w checker.Witness) Factory {
	t.Helper()
	tc, err := rc.NewTeamConsensus(typ, w, "x")
	if err != nil {
		t.Fatal(err)
	}
	inputs := tc.TeamInputs("vA", "vB")
	return func() (*sim.Memory, []sim.Body, []sim.Value) {
		m := sim.NewMemory()
		tc.Setup(m)
		bodies := make([]sim.Body, tc.N())
		for i := range bodies {
			bodies[i] = tc.Body(i, inputs[i])
		}
		return m, bodies, inputs
	}
}

// TestModelCheckFigure2OnS2 exhaustively verifies the Figure 2 algorithm
// on the S_2 witness for every interleaving and every single-crash
// placement within the depth bound — the strongest form of the Theorem 8
// check this repository performs.
func TestModelCheckFigure2OnS2(t *testing.T) {
	f := tcFactory(t, types.NewSn(2), snWitness2())
	stats, err := Exhaustive(f, Options{
		MaxDepth:    depth(8, 10),
		CrashBudget: 1,
		Check:       rc.CheckOutcome,
	})
	if err != nil {
		t.Fatalf("violation found: %v", err)
	}
	if stats.Completions == 0 || stats.Prefixes < 100 {
		t.Fatalf("exploration too shallow: %+v", stats)
	}
	t.Logf("explored %d prefixes, %d completions, %d with crashes",
		stats.Prefixes, stats.Completions, stats.CrashPlacements)
}

// TestModelCheckFigure2OnCAS3 covers a 3-process instance (|B| = 2, the
// non-yield branch) with one crash anywhere.
func TestModelCheckFigure2OnCAS3(t *testing.T) {
	w := checker.Witness{
		Q0:    spec.State(types.Bottom),
		Teams: []int{checker.TeamA, checker.TeamB, checker.TeamB},
		Ops:   []spec.Op{"cas(_,a)", "cas(_,b)", "cas(_,c)"},
	}
	f := tcFactory(t, types.NewCAS(), w)
	stats, err := Exhaustive(f, Options{
		MaxDepth:    depth(5, 7),
		CrashBudget: 1,
		Check:       rc.CheckOutcome,
	})
	if err != nil {
		t.Fatalf("violation found: %v", err)
	}
	t.Logf("stats: %+v", stats)
}

// TestModelCheckFindsKnownBug turns the explorer on the deliberately
// broken VariantNoYield algorithm (the paper's second §3.1 scenario) and
// demands it FINDS the agreement violation — a self-test that the
// exploration is actually adversarial enough.
func TestModelCheckFindsKnownBug(t *testing.T) {
	tc, err := rc.NewTeamConsensus(types.NewSn(2), snWitness2(), "x")
	if err != nil {
		t.Fatal(err)
	}
	broken := rc.NewTeamConsensusVariant(tc, rc.VariantNoYield)
	inputs := broken.TeamInputs("vA", "vB")
	f := func() (*sim.Memory, []sim.Body, []sim.Value) {
		m := sim.NewMemory()
		broken.Setup(m)
		bodies := make([]sim.Body, broken.N())
		for i := range bodies {
			bodies[i] = broken.Body(i, inputs[i])
		}
		return m, bodies, inputs
	}
	var foundScript string
	_, err = Exhaustive(f, Options{
		MaxDepth:    10,
		CrashBudget: 1,
		Check:       rc.CheckOutcome,
		OnViolation: func(script []sim.Action, verr error) {
			foundScript = FormatScript(script)
		},
	})
	if !errors.Is(err, ErrViolation) {
		t.Fatalf("explorer failed to find the known §3.1 bug: %v", err)
	}
	if !strings.Contains(foundScript, "c0") && !strings.Contains(foundScript, "c1") {
		t.Fatalf("violation schedule %q contains no crash — the bug needs one", foundScript)
	}
	t.Logf("found violating schedule: %s", foundScript)
}

// TestModelCheckFindsYieldAlwaysBug does the same for VariantYieldAlways
// (the first §3.1 scenario), which needs no crash at all.
func TestModelCheckFindsYieldAlwaysBug(t *testing.T) {
	w := checker.Witness{
		Q0:    spec.State(types.Bottom),
		Teams: []int{checker.TeamA, checker.TeamB, checker.TeamB},
		Ops:   []spec.Op{"cas(_,a)", "cas(_,b)", "cas(_,c)"},
	}
	tc, err := rc.NewTeamConsensus(types.NewCAS(), w, "x")
	if err != nil {
		t.Fatal(err)
	}
	broken := rc.NewTeamConsensusVariant(tc, rc.VariantYieldAlways)
	inputs := broken.TeamInputs("vA", "vB")
	f := func() (*sim.Memory, []sim.Body, []sim.Value) {
		m := sim.NewMemory()
		broken.Setup(m)
		bodies := make([]sim.Body, broken.N())
		for i := range bodies {
			bodies[i] = broken.Body(i, inputs[i])
		}
		return m, bodies, inputs
	}
	// Depth 8 suffices to expose the bug; the full run keeps the original
	// deeper bound as a regression margin.
	_, err = Exhaustive(f, Options{
		MaxDepth:    depth(8, 9),
		CrashBudget: 0,
		Check:       rc.CheckOutcome,
	})
	if !errors.Is(err, ErrViolation) {
		t.Fatalf("explorer failed to find the yield-always bug: %v", err)
	}
}

// TestSimultaneousExploration exercises crash-all branching on the
// Figure 4 algorithm for 2 processes.
func TestSimultaneousExploration(t *testing.T) {
	alg := rc.NewSimultaneousRC(2, "x")
	inputs := []sim.Value{"x", "y"}
	f := func() (*sim.Memory, []sim.Body, []sim.Value) {
		m := sim.NewMemory()
		alg.Setup(m)
		bodies := make([]sim.Body, 2)
		for i := range bodies {
			bodies[i] = alg.Body(i, inputs[i])
		}
		return m, bodies, inputs
	}
	stats, err := Exhaustive(f, Options{
		MaxDepth:     8,
		CrashBudget:  1,
		Simultaneous: true,
		Check:        rc.CheckOutcome,
	})
	if err != nil {
		t.Fatalf("violation: %v", err)
	}
	if stats.CrashPlacements == 0 {
		t.Fatal("no crash-all placements explored")
	}
}

func TestExhaustiveRequiresChecker(t *testing.T) {
	f := func() (*sim.Memory, []sim.Body, []sim.Value) {
		return sim.NewMemory(), nil, nil
	}
	if _, err := Exhaustive(f, Options{}); err == nil {
		t.Fatal("nil checker accepted")
	}
}

func TestFormatScript(t *testing.T) {
	got := FormatScript([]sim.Action{sim.Step(0), sim.Crash(1), sim.CrashAll()})
	if got != "s0 c1 C*" {
		t.Fatalf("FormatScript = %q", got)
	}
	if FormatScript(nil) != "(empty)" {
		t.Fatal("empty script formatting")
	}
}

// TestModelCheckUniversalTiny exhaustively explores the universal
// construction with two processes, one operation each, and one crash
// anywhere within the depth bound; every completion must leave a list
// that replays correctly and contains each operation exactly once.
func TestModelCheckUniversalTiny(t *testing.T) {
	var lastU *universal.Universal
	var lastM *sim.Memory
	f := func() (*sim.Memory, []sim.Body, []sim.Value) {
		u := universal.New(2, types.NewFetchAdd(100), "0", "u")
		m := sim.NewMemory()
		u.Setup(m)
		lastU, lastM = u, m
		bodies := []sim.Body{
			func(p *sim.Proc) sim.Value { return sim.Value(u.Invoke(p, 0, 0, "add(1)")) },
			func(p *sim.Proc) sim.Value { return sim.Value(u.Invoke(p, 1, 0, "add(1)")) },
		}
		return m, bodies, []sim.Value{"0", "1"}
	}
	check := func(inputs []sim.Value, out *sim.Outcome) error {
		if err := lastU.VerifyList(lastM); err != nil {
			return err
		}
		list, err := lastU.ListOrder(lastM)
		if err != nil {
			return err
		}
		done := 0
		for _, d := range out.Decided {
			if d {
				done++
			}
		}
		// Every decided process's op is in the list; the list never
		// exceeds the number of announced ops.
		if len(list) < done || len(list) > 2 {
			return fmt.Errorf("list has %d ops with %d processes decided", len(list), done)
		}
		// Decided responses must be distinct fetch&add positions.
		if done == 2 && out.Decisions[0] == out.Decisions[1] {
			return fmt.Errorf("duplicate fetch&add responses %v", out.Decisions)
		}
		return nil
	}
	stats, err := Exhaustive(f, Options{MaxDepth: 7, CrashBudget: 1, Check: check})
	if err != nil {
		t.Fatalf("violation: %v", err)
	}
	t.Logf("universal model check: %+v", stats)
}

// TestOpenQuestionProbeDeeper pushes the paper's §5 open question (is
// 2-recording necessary for 2-process RC?) a little harder: Figure 4
// over non-recoverable test&set consensus, independent crashes, deeper
// schedules. Finding a violation here would resolve the open question
// negatively for this particular algorithm; none has been found.
func TestOpenQuestionProbeDeeper(t *testing.T) {
	if testing.Short() {
		t.Skip("deep exploration skipped in -short mode")
	}
	alg := rc.NewSimultaneousRC(2, "probe")
	alg.Sub = rc.TASInstance{}
	inputs := []sim.Value{"x", "y"}
	f := func() (*sim.Memory, []sim.Body, []sim.Value) {
		m := sim.NewMemory()
		alg.Setup(m)
		bodies := make([]sim.Body, 2)
		for i := range bodies {
			bodies[i] = alg.Body(i, inputs[i])
		}
		return m, bodies, inputs
	}
	// MaxDepth 11 is a deliberate permanent trim from 12: with
	// CrashBudget 2 the extra level roughly doubled the whole suite's
	// wall clock (~34s of ~37s) for a probe that has never found a
	// violation at any depth. Raise it again if the open question gets
	// serious attention.
	stats, err := Exhaustive(f, Options{
		MaxDepth:    11,
		CrashBudget: 2,
		Check:       rc.CheckOutcome,
	})
	if err != nil {
		t.Fatalf("open question answered?! %v", err)
	}
	t.Logf("probe explored %d prefixes (%d completions) without violation", stats.Prefixes, stats.Completions)
}
