// Package explore performs bounded exhaustive exploration ("small-scope
// model checking") of simulated executions: it enumerates EVERY
// interleaving of process steps and EVERY placement of crashes — up to a
// configurable schedule depth and crash budget — and checks a safety
// predicate on every resulting execution. Random seeds sample the
// adversary; this package *is* the adversary, within its bounds.
//
// It complements the paper-reproduction suite: Theorem 8 claims the
// Figure 2 algorithm is safe against all independent-crash adversaries,
// and explore verifies that claim exhaustively for small instances
// (2–3 processes, small crash budgets) rather than statistically.
//
// The explorer works by schedule-prefix extension: the simulator runs
// each candidate prefix from a fresh memory (executions are
// deterministic given a script), halts at the prefix's end, reports
// which processes are still undecided, and the explorer branches on
// every enabled action (a step of any live process, or a crash while
// budget remains). Prefixes that reach MaxDepth are completed with a
// deterministic fair schedule and checked, so every explored prefix
// contributes a full execution.
package explore

import (
	"errors"
	"fmt"

	"rcons/internal/sim"
)

// Factory produces a fresh, independent instance of the system under
// test: its memory, its process bodies, and the inputs used for
// checking. It must return an equivalent instance on every call
// (exploration re-executes from scratch for every prefix).
type Factory func() (*sim.Memory, []sim.Body, []sim.Value)

// Checker validates one finished (or prefix-halted) execution; inputs
// come from the Factory. rc.CheckOutcome is the usual choice.
type Checker func(inputs []sim.Value, out *sim.Outcome) error

// Options bounds the exploration.
type Options struct {
	// MaxDepth bounds the explored schedule prefix length (deeper
	// behaviour is covered by the fair completion). Default 8.
	MaxDepth int
	// CrashBudget bounds the total number of crash events placed by the
	// explorer. Default 1.
	CrashBudget int
	// Simultaneous switches crash events to crash-all (the Section 2
	// model); individual crashes are used otherwise.
	Simultaneous bool
	// Check is the safety predicate; it must not be nil.
	Check Checker
	// OnViolation, if non-nil, receives the offending script before
	// Exhaustive returns (useful for printing a repro).
	OnViolation func(script []sim.Action, err error)
}

// Stats summarizes an exploration.
type Stats struct {
	// Prefixes is the number of schedule prefixes executed.
	Prefixes int
	// Completions is the number of full executions checked (every
	// leaf: all-decided prefixes plus fair completions).
	Completions int
	// MaxDepthReached is the longest prefix explored.
	MaxDepthReached int
	// CrashPlacements counts prefixes that contained at least one crash.
	CrashPlacements int
}

// ErrViolation wraps the checker error for a failing schedule.
var ErrViolation = errors.New("explore: safety violation")

// Exhaustive enumerates schedules of f within the bounds and checks
// every execution. It returns stats and the first violation found (nil
// when the system is safe throughout the explored space).
func Exhaustive(f Factory, opts Options) (*Stats, error) {
	if opts.Check == nil {
		return nil, errors.New("explore: Options.Check must be set")
	}
	if opts.MaxDepth <= 0 {
		opts.MaxDepth = 8
	}
	if opts.CrashBudget < 0 {
		opts.CrashBudget = 1
	}
	e := &explorer{f: f, opts: opts, stats: &Stats{}}
	if err := e.extend(nil, 0); err != nil {
		return e.stats, err
	}
	return e.stats, nil
}

type explorer struct {
	f     Factory
	opts  Options
	stats *Stats
}

// runPrefix executes one prefix and returns the outcome and inputs.
func (e *explorer) runPrefix(script []sim.Action, halt bool) ([]sim.Value, *sim.Outcome, error) {
	m, bodies, inputs := e.f()
	model := sim.Independent
	if e.opts.Simultaneous {
		model = sim.Simultaneous
	}
	cfg := sim.Config{
		// Seed irrelevant for the scripted part; the fair completion
		// (halt == false) uses round-robin-ish random with seed 0 and no
		// further crashes. DecideRequiresStep makes the adversary
		// strictly stronger: it can crash a process between its last
		// shared access and its output — the window that breaks
		// non-recoverable algorithms.
		Seed:               0,
		Model:              model,
		Script:             script,
		HaltAtScriptEnd:    halt,
		DecideRequiresStep: true,
	}
	out, err := sim.NewRunner(m, bodies, cfg).Run()
	if err != nil {
		return inputs, out, err
	}
	return inputs, out, nil
}

func crashesIn(script []sim.Action) int {
	n := 0
	for _, a := range script {
		if a.Kind != sim.ActStep {
			n++
		}
	}
	return n
}

// extend explores all continuations of the given prefix.
func (e *explorer) extend(script []sim.Action, depth int) error {
	e.stats.Prefixes++
	if depth > e.stats.MaxDepthReached {
		e.stats.MaxDepthReached = depth
	}
	if crashesIn(script) > 0 {
		e.stats.CrashPlacements++
	}

	inputs, out, err := e.runPrefix(script, true)
	if err != nil {
		return fmt.Errorf("explore: prefix execution: %w", err)
	}
	if err := e.opts.Check(inputs, out); err != nil {
		return e.violation(script, err)
	}

	live := make([]int, 0, len(out.Decided))
	for i, d := range out.Decided {
		if !d {
			live = append(live, i)
		}
	}
	if len(live) == 0 {
		e.stats.Completions++
		return nil
	}
	if depth >= e.opts.MaxDepth {
		// Fair completion: run the same prefix without halting; no
		// further crashes are injected (CrashProb 0).
		inputs, out, err := e.runPrefix(script, false)
		if err != nil {
			return fmt.Errorf("explore: completion: %w", err)
		}
		e.stats.Completions++
		if err := e.opts.Check(inputs, out); err != nil {
			return e.violation(script, err)
		}
		return nil
	}

	budgetLeft := e.opts.CrashBudget - crashesIn(script)
	for _, p := range live {
		next := append(append([]sim.Action(nil), script...), sim.Step(p))
		if err := e.extend(next, depth+1); err != nil {
			return err
		}
		if budgetLeft > 0 && !e.opts.Simultaneous {
			next := append(append([]sim.Action(nil), script...), sim.Crash(p))
			if err := e.extend(next, depth+1); err != nil {
				return err
			}
		}
	}
	if budgetLeft > 0 && e.opts.Simultaneous {
		next := append(append([]sim.Action(nil), script...), sim.CrashAll())
		if err := e.extend(next, depth+1); err != nil {
			return err
		}
	}
	return nil
}

func (e *explorer) violation(script []sim.Action, err error) error {
	if e.opts.OnViolation != nil {
		e.opts.OnViolation(script, err)
	}
	return fmt.Errorf("%w: %v (schedule: %s)", ErrViolation, err, FormatScript(script))
}

// FormatScript renders a schedule compactly, e.g. "s0 s1 c0 s0".
// It is kept for compatibility; the canonical implementation now lives
// in package sim so every schedule consumer formats identically.
func FormatScript(script []sim.Action) string {
	return sim.FormatScript(script)
}
