package flight

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestCoalesce: followers that arrive while the leader runs share its
// result; exactly one caller computes.
func TestCoalesce(t *testing.T) {
	var g Group[string]
	release := make(chan struct{})
	var computes atomic.Int64

	leaderIn := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]string, 6)
	sharedFlags := make([]bool, 6)
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, shared, err := g.Do(context.Background(), "k", func() (string, error) {
			computes.Add(1)
			close(leaderIn)
			<-release
			return "value", nil
		})
		if err != nil {
			t.Errorf("leader: %v", err)
		}
		results[0], sharedFlags[0] = v, shared
	}()
	<-leaderIn // the computation is in flight

	for i := 1; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, shared, err := g.Do(context.Background(), "k", func() (string, error) {
				computes.Add(1)
				return "follower-computed", nil
			})
			if err != nil {
				t.Errorf("follower %d: %v", i, err)
			}
			results[i], sharedFlags[i] = v, shared
		}()
	}
	// Give followers a moment to park on the in-flight call, then finish.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	if got := computes.Load(); got != 1 {
		t.Fatalf("computations = %d, want 1", got)
	}
	sharedCount := 0
	for i, v := range results {
		if v != "value" {
			t.Errorf("caller %d got %q", i, v)
		}
		if sharedFlags[i] {
			sharedCount++
		}
	}
	if sharedFlags[0] {
		t.Error("leader reported shared=true")
	}
	if sharedCount != 5 {
		t.Errorf("shared results = %d, want 5", sharedCount)
	}
}

// TestLeaderFailureFollowersRecompute: a failed leader's error reaches
// only the leader; a waiting follower recomputes instead of inheriting
// the error or hanging.
func TestLeaderFailureFollowersRecompute(t *testing.T) {
	var g Group[int]
	leaderIn := make(chan struct{})
	fail := make(chan struct{})
	bang := errors.New("leader exploded")

	leaderErr := make(chan error, 1)
	go func() {
		_, _, err := g.Do(context.Background(), "k", func() (int, error) {
			close(leaderIn)
			<-fail
			return 0, bang
		})
		leaderErr <- err
	}()
	<-leaderIn

	const followers = 4
	type res struct {
		v   int
		err error
	}
	done := make(chan res, followers)
	var recomputes atomic.Int64
	for i := 0; i < followers; i++ {
		go func() {
			v, _, err := g.Do(context.Background(), "k", func() (int, error) {
				recomputes.Add(1)
				return 42, nil
			})
			done <- res{v, err}
		}()
	}
	time.Sleep(20 * time.Millisecond)
	close(fail)

	if err := <-leaderErr; !errors.Is(err, bang) {
		t.Fatalf("leader error = %v, want %v", err, bang)
	}
	for i := 0; i < followers; i++ {
		select {
		case r := <-done:
			if r.err != nil {
				t.Fatalf("follower error after leader failure: %v", r.err)
			}
			if r.v != 42 {
				t.Fatalf("follower value = %d, want 42", r.v)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("follower hung after leader failure")
		}
	}
	// At least one follower recomputed; successful retries coalesce the
	// rest, so the count is in [1, followers].
	if n := recomputes.Load(); n < 1 || n > followers {
		t.Fatalf("recomputes = %d, want 1..%d", n, followers)
	}
	// The error was not cached: a fresh call computes normally.
	if v, shared, err := g.Do(context.Background(), "k", func() (int, error) { return 7, nil }); err != nil || shared || v != 7 {
		t.Fatalf("post-failure call = (%d, %v, %v), want (7, false, nil)", v, shared, err)
	}
}

// TestFollowerCancel: a follower whose context ends while waiting
// returns promptly with its context error; the leader and remaining
// followers are unaffected.
func TestFollowerCancel(t *testing.T) {
	var g Group[string]
	leaderIn := make(chan struct{})
	release := make(chan struct{})
	go func() {
		_, _, _ = g.Do(context.Background(), "k", func() (string, error) {
			close(leaderIn)
			<-release
			return "late", nil
		})
	}()
	<-leaderIn

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, _, err := g.Do(ctx, "k", func() (string, error) { return "", nil })
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled follower error = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled follower did not return")
	}

	// A patient follower still gets the leader's value.
	got := make(chan string, 1)
	go func() {
		v, _, _ := g.Do(context.Background(), "k", func() (string, error) { return "", nil })
		got <- v
	}()
	time.Sleep(10 * time.Millisecond)
	close(release)
	if v := <-got; v != "late" {
		t.Fatalf("patient follower got %q, want %q", v, "late")
	}
}

// TestConcurrentCancelStorm: many callers with short, staggered
// deadlines racing one slow key must all terminate (either with the
// value or their own context error) — no deadlocks, no lost wakeups.
func TestConcurrentCancelStorm(t *testing.T) {
	var g Group[int]
	var wg sync.WaitGroup
	for round := 0; round < 5; round++ {
		for i := 0; i < 20; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				ctx, cancel := context.WithTimeout(context.Background(), time.Duration(1+i%7)*time.Millisecond)
				defer cancel()
				_, _, err := g.Do(ctx, "storm", func() (int, error) {
					select {
					case <-time.After(3 * time.Millisecond):
					case <-ctx.Done():
						return 0, ctx.Err()
					}
					return 1, nil
				})
				if err != nil && !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
					t.Errorf("unexpected error: %v", err)
				}
			}()
		}
		wg.Wait()
	}
	if g.Pending("storm") {
		t.Fatal("call leaked in the group after all callers returned")
	}
}

// TestDistinctKeys: different keys never coalesce.
func TestDistinctKeys(t *testing.T) {
	var g Group[string]
	var computes atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			key := fmt.Sprintf("k%d", i)
			v, shared, err := g.Do(context.Background(), key, func() (string, error) {
				computes.Add(1)
				time.Sleep(5 * time.Millisecond)
				return key, nil
			})
			if err != nil || shared || v != key {
				t.Errorf("key %s: (%q, %v, %v)", key, v, shared, err)
			}
		}()
	}
	wg.Wait()
	if got := computes.Load(); got != 8 {
		t.Fatalf("computations = %d, want 8", got)
	}
}
