// Package flight provides context-aware request coalescing
// (singleflight): concurrent callers that ask for the same key share
// one computation instead of multiplying the load. It generalizes the
// ad-hoc in-flight dedup rcserve's atlas handler used to carry, with
// the same two guarantees that made that code correct under failure:
//
//   - A leader's error is never shared. Followers waiting on a failed
//     computation do not inherit the error (which may be specific to
//     the leader's request — a cancelled context, a hit deadline);
//     instead one of them becomes the new leader and recomputes, so a
//     transient failure neither hangs the queue nor gets cached.
//   - A waiting follower whose own context ends stops waiting
//     immediately and returns its context's error, leaving the leader
//     (and the other followers) undisturbed.
//
// Values are shared across goroutines, so V should be immutable once
// returned (rcserve coalesces encoded JSON payloads — []byte that are
// written, never mutated).
package flight

import (
	"context"
	"sync"

	"rcons/internal/obs"
)

// call is one in-flight computation. The leader fills val/err, removes
// the call from the group's map and then closes done; followers that
// observe err != nil re-enter the map and race to lead a fresh attempt.
type call[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Group coalesces concurrent Do calls by key. The zero value is ready
// to use. A Group must not be copied after first use.
type Group[V any] struct {
	mu    sync.Mutex
	calls map[string]*call[V]
}

// Do returns the result of fn for key, ensuring that at any moment at
// most one execution of fn per key is in flight. The caller that starts
// the execution is the leader; callers that arrive while it runs are
// followers and wait. On leader success every follower receives the
// leader's value with shared=true. On leader failure the error is
// returned to the leader alone and each follower retries — the first
// one in becomes the new leader. A follower whose ctx is done while
// waiting returns ctx.Err() without waiting further.
//
// fn itself is responsible for honouring the leader's context; Do does
// not abort a running fn when followers leave.
func (g *Group[V]) Do(ctx context.Context, key string, fn func() (V, error)) (v V, shared bool, err error) {
	for {
		g.mu.Lock()
		if g.calls == nil {
			g.calls = map[string]*call[V]{}
		}
		c, running := g.calls[key]
		if !running {
			c = &call[V]{done: make(chan struct{})}
			g.calls[key] = c
			g.mu.Unlock()

			// Leader: the computation runs on this caller's trace. The
			// span makes "this request paid for the work" visible next
			// to the followers' flight.wait spans.
			_, span := obs.StartSpan(ctx, "flight.lead")
			c.val, c.err = fn()
			if c.err != nil {
				span.MarkError()
			}
			span.End()
			g.mu.Lock()
			delete(g.calls, key)
			g.mu.Unlock()
			close(c.done)
			return c.val, false, c.err
		}
		g.mu.Unlock()

		_, wait := obs.StartSpan(ctx, "flight.wait")
		select {
		case <-c.done:
			wait.End()
			if c.err == nil {
				return c.val, true, nil
			}
			// The leader failed. Its call is already out of the map, so
			// looping re-checks for (or becomes) a fresh leader. Respect
			// this caller's own context between attempts.
			if cerr := ctx.Err(); cerr != nil {
				var zero V
				return zero, false, cerr
			}
		case <-ctx.Done():
			wait.MarkError()
			wait.End()
			var zero V
			return zero, false, ctx.Err()
		}
	}
}

// Pending reports whether a computation for key is currently in flight
// (for tests and introspection; the answer may be stale by return).
func (g *Group[V]) Pending(key string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	_, ok := g.calls[key]
	return ok
}
