// Package load is the traffic engine behind cmd/rcload: a workload
// generator for rcserve that drives mixed GET/POST/batch traffic at a
// target rate and reports throughput plus tail latency (p50/p99/p999)
// from a fine-grained histogram. The same engine backs the rcbench
// serve/* entries, so the serving tail is covered by the regression
// gate, and the CI smoke job, so the counters it provokes (coalescing,
// rate limiting) are scraped from a live server on every push.
package load

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rcons/internal/atlas"
	"rcons/internal/obs"
	"rcons/internal/types"
)

// Options configures one load run.
type Options struct {
	// BaseURL is the server under test, e.g. "http://127.0.0.1:8372".
	BaseURL string
	// Duration bounds the run; ignored when Requests is set.
	Duration time.Duration
	// Requests, when > 0, is a fixed request budget instead of Duration.
	Requests int
	// RPS is the target request rate across all workers; 0 = unpaced
	// (as fast as Concurrency in-flight requests allow).
	RPS float64
	// Concurrency is the number of worker goroutines (default 8).
	Concurrency int
	// Workload selects the request mix: "mixed" (default) rotates over
	// GET classify, POST classify, batch, zoo and search; "single" sends
	// only one-type classify requests; "batch" only batch requests.
	Workload string
	// BatchSize is the items per batch request (default 100, capped to
	// the server's batch cap by the caller).
	BatchSize int
	// Types is the size of the generated type pool the workload draws
	// from (default 100): a mix of built-in names and seeded random
	// custom tables.
	Types int
	// Limit is the classification limit parameter (default 3).
	Limit int
	// Seed makes the pool and request sequence deterministic (default 1).
	Seed int64
	// Trace stamps every request with a client-minted trace ID
	// (X-RC-Trace), forcing the server to sample it into its flight
	// recorder, and reports the IDs of the slowest requests so they can
	// be pulled from GET /debug/requests/{trace} after the run.
	Trace bool
	// Client overrides the HTTP client (default: shared transport with
	// Concurrency idle connections).
	Client *http.Client
}

// WorstTrace pairs a slow request's trace ID with its client-observed
// latency; the ID keys into the server's /debug/requests/{trace}.
type WorstTrace struct {
	Trace   string  `json:"trace"`
	Seconds float64 `json:"seconds"`
}

// worstTraceCap bounds the slowest-request list in the report.
const worstTraceCap = 16

// Result is one finished run in rcload's JSON output shape.
type Result struct {
	Workload    string  `json:"workload"`
	Duration    float64 `json:"duration_seconds"`
	Requests    int64   `json:"requests"`
	Items       int64   `json:"items"`
	Errors      int64   `json:"errors"`
	Limited     int64   `json:"limited"`
	Shed        int64   `json:"shed"`
	Throughput  float64 `json:"requests_per_sec"`
	ItemsPerSec float64 `json:"items_per_sec"`
	P50         float64 `json:"p50_seconds"`
	P99         float64 `json:"p99_seconds"`
	P999        float64 `json:"p999_seconds"`
	// Worst lists the slowest requests' trace IDs (with -trace only),
	// slowest first — the handles to pull span trees off the server.
	Worst []WorstTrace `json:"p99_worst_traces,omitempty"`
}

// worstTracker keeps the top worstTraceCap slowest traces, sorted
// slowest-first, under a mutex shared by all workers.
type worstTracker struct {
	mu  sync.Mutex
	top []WorstTrace
}

func (w *worstTracker) note(trace string, secs float64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.top) == worstTraceCap && secs <= w.top[len(w.top)-1].Seconds {
		return
	}
	i := sort.Search(len(w.top), func(i int) bool { return w.top[i].Seconds < secs })
	w.top = append(w.top, WorstTrace{})
	copy(w.top[i+1:], w.top[i:])
	w.top[i] = WorstTrace{Trace: trace, Seconds: secs}
	if len(w.top) > worstTraceCap {
		w.top = w.top[:worstTraceCap]
	}
}

// latencyBuckets resolve sub-millisecond local round trips: obs.DefBuckets
// start at 1ms, which would collapse an in-process p999 into one bucket.
var latencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// poolEntry is one classification target: a built-in name or a custom
// table (marshaled once, reused by every request that draws it).
type poolEntry struct {
	name  string
	table json.RawMessage
}

// buildPool generates n deterministic targets: built-in zoo types by
// name, then seeded random 3-state/2-op custom tables.
func buildPool(n int, seed int64) []poolEntry {
	var pool []poolEntry
	for _, t := range types.Zoo() {
		if len(pool) == n {
			return pool
		}
		// Parameterized display names ("queue(cap=4)") don't round-trip
		// through the name lookup; only pool the ones that do.
		if _, err := types.ByName(t.Name()); err != nil {
			continue
		}
		pool = append(pool, poolEntry{name: t.Name()})
	}
	rng := rand.New(rand.NewSource(seed))
	for len(pool) < n {
		t := atlas.Random(rng, 3, 2, 2)
		raw, err := json.Marshal(t.Custom())
		if err != nil {
			continue // a table that cannot marshal cannot be POSTed either
		}
		pool = append(pool, poolEntry{table: raw})
	}
	return pool
}

// request is one prepared unit of work.
type request struct {
	method string
	url    string
	body   []byte
	items  int64  // classifications this request asks for
	trace  string // client-minted trace ID (with Options.Trace only)
}

// planner produces the deterministic request sequence for a workload.
type planner struct {
	opts Options
	pool []poolEntry

	// bodies caches marshaled batch request bodies by pool offset: the
	// item rotation wraps modulo the pool, so at most len(pool) distinct
	// bodies exist and the (large) marshal runs once per offset instead
	// of once per request.
	mu     sync.Mutex
	bodies map[int][]byte
}

func (p *planner) plan(i int) request {
	switch p.opts.Workload {
	case "single":
		return p.single(i)
	case "batch":
		return p.batch(i)
	default: // mixed
		switch i % 5 {
		case 0, 1:
			return p.single(i)
		case 2:
			return p.batch(i)
		case 3:
			return request{method: http.MethodGet,
				url: p.opts.BaseURL + "/v1/zoo?limit=" + strconv.Itoa(p.opts.Limit), items: 1}
		default:
			return request{method: http.MethodGet,
				url: fmt.Sprintf("%s/v1/search?type=S_3&property=recording&n=%d", p.opts.BaseURL, p.opts.Limit), items: 1}
		}
	}
}

func (p *planner) single(i int) request {
	e := p.pool[i%len(p.pool)]
	if e.name != "" {
		return request{method: http.MethodGet,
			url:   fmt.Sprintf("%s/v1/classify?type=%s&limit=%d", p.opts.BaseURL, urlQueryEscape(e.name), p.opts.Limit),
			items: 1}
	}
	return request{method: http.MethodPost,
		url:   fmt.Sprintf("%s/v1/classify?limit=%d", p.opts.BaseURL, p.opts.Limit),
		body:  e.table,
		items: 1}
}

func (p *planner) batch(i int) request {
	offset := i % len(p.pool)
	p.mu.Lock()
	body, hit := p.bodies[offset]
	p.mu.Unlock()
	if !hit {
		items := make([]map[string]any, p.opts.BatchSize)
		for j := range items {
			e := p.pool[(offset+j)%len(p.pool)]
			if e.name != "" {
				items[j] = map[string]any{"type": e.name}
			} else {
				items[j] = map[string]any{"table": e.table}
			}
		}
		body, _ = json.Marshal(map[string]any{"limit": p.opts.Limit, "items": items})
		p.mu.Lock()
		if p.bodies == nil {
			p.bodies = make(map[int][]byte)
		}
		p.bodies[offset] = body
		p.mu.Unlock()
	}
	return request{method: http.MethodPost,
		url:   p.opts.BaseURL + "/v1/classify/batch",
		body:  body,
		items: int64(p.opts.BatchSize)}
}

// urlQueryEscape covers the one awkward built-in name ("compare&swap")
// without pulling in net/url for every request build.
func urlQueryEscape(s string) string {
	s = strings.ReplaceAll(s, "&", "%26")
	return strings.ReplaceAll(s, " ", "%20")
}

// normalized fills defaults.
func (o Options) normalized() Options {
	if o.Concurrency <= 0 {
		o.Concurrency = 8
	}
	if o.Workload == "" {
		o.Workload = "mixed"
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 100
	}
	if o.Types <= 0 {
		o.Types = 100
	}
	if o.Limit <= 0 {
		o.Limit = 3
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Duration <= 0 && o.Requests <= 0 {
		o.Duration = 5 * time.Second
	}
	if o.Client == nil {
		o.Client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        o.Concurrency,
			MaxIdleConnsPerHost: o.Concurrency,
		}}
	}
	return o
}

// Run drives the configured workload and reports the aggregate result.
// Requests that fail at the HTTP layer or return an unexpected status
// count as errors; 429 and 503 are tallied separately as limited/shed —
// expected outcomes when probing a rate-limited server, not failures.
func Run(ctx context.Context, opts Options) (*Result, error) {
	o := opts.normalized()
	switch o.Workload {
	case "mixed", "single", "batch":
	default:
		return nil, fmt.Errorf("unknown workload %q (want mixed, single or batch)", o.Workload)
	}
	if o.BaseURL == "" {
		return nil, fmt.Errorf("load: BaseURL required")
	}
	p := &planner{opts: o, pool: buildPool(o.Types, o.Seed)}

	if o.Duration > 0 && o.Requests <= 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.Duration)
		defer cancel()
	}

	// The pacer hands out send permissions at the target rate; without
	// -rps the channel is closed and workers free-run.
	var pace <-chan time.Time
	if o.RPS > 0 {
		t := time.NewTicker(time.Duration(float64(time.Second) / o.RPS))
		defer t.Stop()
		pace = t.C
	}

	hist := obs.NewRegistry().
		Histogram("rcload_latency_seconds", "rcload request latency.", latencyBuckets).
		With()
	var requests, items, errors, limited, shed atomic.Int64
	var seq atomic.Int64
	var worst *worstTracker
	if o.Trace {
		worst = &worstTracker{}
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < o.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := seq.Add(1) - 1
				if o.Requests > 0 && i >= int64(o.Requests) {
					return
				}
				if ctx.Err() != nil {
					return
				}
				if pace != nil {
					select {
					case <-pace:
					case <-ctx.Done():
						return
					}
				}
				req := p.plan(int(i))
				if o.Trace {
					req.trace = obs.NewTraceID()
				}
				t0 := time.Now()
				status, gotItems, err := o.do(ctx, req)
				if ctx.Err() != nil {
					return // don't count the request we tore down
				}
				secs := time.Since(t0).Seconds()
				hist.Observe(secs)
				if worst != nil {
					worst.note(req.trace, secs)
				}
				requests.Add(1)
				switch {
				case err != nil:
					errors.Add(1)
				case status == http.StatusTooManyRequests:
					limited.Add(1)
				case status == http.StatusServiceUnavailable:
					shed.Add(1)
				case status != http.StatusOK:
					errors.Add(1)
				default:
					items.Add(gotItems)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := &Result{
		Workload: o.Workload,
		Duration: elapsed.Seconds(),
		Requests: requests.Load(),
		Items:    items.Load(),
		Errors:   errors.Load(),
		Limited:  limited.Load(),
		Shed:     shed.Load(),
		P50:      hist.Quantile(0.50),
		P99:      hist.Quantile(0.99),
		P999:     hist.Quantile(0.999),
	}
	if worst != nil {
		res.Worst = worst.top
	}
	if secs := elapsed.Seconds(); secs > 0 {
		res.Throughput = float64(res.Requests) / secs
		res.ItemsPerSec = float64(res.Items) / secs
	}
	return res, nil
}

// do executes one planned request and extracts the served item count
// from the response ("count" for list payloads, "ok" for batches —
// failed batch items are not served classifications).
func (o Options) do(ctx context.Context, r request) (status int, items int64, err error) {
	var body io.Reader
	if r.body != nil {
		body = bytes.NewReader(r.body)
	}
	req, err := http.NewRequestWithContext(ctx, r.method, r.url, body)
	if err != nil {
		return 0, 0, err
	}
	if r.body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if r.trace != "" {
		req.Header.Set(obs.TraceHeader, r.trace)
	}
	resp, err := o.Client.Do(req)
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, 0, nil
	}
	items, err = envelopeItems(resp.Body)
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, items, err
}

// envelopeItems extracts the served item count from a 200 response
// ("ok" for batches — failed batch items are not served classifications
// — falling back to "count" for list payloads, else 1). rcserve emits
// those envelope fields before the payload arrays, so the scan stops at
// the first "items"/"results" key instead of parsing the (potentially
// hundreds-of-KB) bulk; the caller discards the rest unparsed.
func envelopeItems(body io.Reader) (int64, error) {
	dec := json.NewDecoder(body)
	tok, err := dec.Token()
	if err != nil {
		return 0, err
	}
	if d, ok := tok.(json.Delim); !ok || d != '{' {
		return 1, nil
	}
	var okCount, count *int64
	for dec.More() {
		keyTok, err := dec.Token()
		if err != nil {
			return 0, err
		}
		key, _ := keyTok.(string)
		if key == "items" || key == "results" {
			break
		}
		var raw json.RawMessage
		if err := dec.Decode(&raw); err != nil {
			return 0, err
		}
		if key == "ok" || key == "count" {
			if v, err := strconv.ParseInt(string(raw), 10, 64); err == nil {
				if key == "ok" {
					okCount = &v
				} else {
					count = &v
				}
			}
		}
	}
	switch {
	case okCount != nil:
		return *okCount, nil
	case count != nil:
		return *count, nil
	default:
		return 1, nil
	}
}

// CoalesceProbe fires n concurrent identical GETs at url and verifies
// every 200 response carried a byte-identical body — the observable
// contract of rcserve's request coalescing. It returns the number of
// successful responses; err reports transport failures, non-200s, or a
// body mismatch.
func CoalesceProbe(ctx context.Context, client *http.Client, url string, n int) (int, error) {
	if client == nil {
		client = http.DefaultClient
	}
	bodies := make([][]byte, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
			if err != nil {
				errs[i] = err
				return
			}
			resp, err := client.Do(req)
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("caller %d: status %d", i, resp.StatusCode)
				return
			}
			bodies[i], errs[i] = io.ReadAll(resp.Body)
		}()
	}
	wg.Wait()
	okBodies := 0
	var first []byte
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			return okBodies, errs[i]
		}
		if first == nil {
			first = bodies[i]
		} else if !bytes.Equal(first, bodies[i]) {
			return okBodies, fmt.Errorf("caller %d body differs from caller 0", i)
		}
		okBodies++
	}
	return okBodies, nil
}
