package load

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"rcons/internal/obs"
	"rcons/internal/serve"
)

// testServer runs the real rcserve handler in-process — the load
// generator's results against it are the same code path CI probes over
// a socket.
func testServer(t *testing.T, flags ...string) *httptest.Server {
	t.Helper()
	s, err := serve.NewFromFlags(append([]string{"-workers", "4", "-log-level", "error"}, flags...)...)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
	})
	return ts
}

func TestBuildPool(t *testing.T) {
	pool := buildPool(100, 1)
	if len(pool) != 100 {
		t.Fatalf("pool size = %d, want 100", len(pool))
	}
	names, tables := 0, 0
	for _, e := range pool {
		if e.name != "" {
			names++
		}
		if e.table != nil {
			tables++
		}
	}
	if names == 0 || tables == 0 {
		t.Fatalf("pool should mix built-ins and custom tables: %d names, %d tables", names, tables)
	}
	// Determinism: the same seed rebuilds the same pool.
	again := buildPool(100, 1)
	for i := range pool {
		if pool[i].name != again[i].name || string(pool[i].table) != string(again[i].table) {
			t.Fatalf("pool entry %d differs across identical seeds", i)
		}
	}
}

// TestRunMixedWorkload drives the full mixed workload at a fixed
// request budget: every request must succeed and the latency quantiles
// must be populated.
func TestRunMixedWorkload(t *testing.T) {
	ts := testServer(t)
	res, err := Run(context.Background(), Options{
		BaseURL:     ts.URL,
		Requests:    40,
		Concurrency: 4,
		Workload:    "mixed",
		Types:       20,
		BatchSize:   10,
		Limit:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 40 {
		t.Fatalf("requests = %d, want 40", res.Requests)
	}
	if res.Errors != 0 || res.Limited != 0 || res.Shed != 0 {
		t.Fatalf("unexpected failures: %+v", res)
	}
	if res.Items < res.Requests {
		t.Fatalf("items = %d < requests = %d (batches should add more)", res.Items, res.Requests)
	}
	if res.Throughput <= 0 || res.ItemsPerSec <= 0 {
		t.Fatalf("zero throughput: %+v", res)
	}
	if res.P50 <= 0 || res.P99 < res.P50 || res.P999 < res.P99 {
		t.Fatalf("quantiles not monotone: p50=%g p99=%g p999=%g", res.P50, res.P99, res.P999)
	}
}

// TestBatchSpeedup is the PR's acceptance check: on a 100-type mixed
// pool, classifying through /v1/classify/batch must deliver at least 5×
// the items/sec of one-request-per-type traffic. Both phases run at
// concurrency 1 — the comparison models one client working through a
// type collection, where each single request pays a full round trip.
// The engine is warmed first so both phases measure serving overhead,
// not cold search order.
func TestBatchSpeedup(t *testing.T) {
	ts := testServer(t)
	base := Options{
		BaseURL:     ts.URL,
		Concurrency: 1,
		Types:       100,
		BatchSize:   100,
		Limit:       3,
	}

	warm := base
	warm.Workload = "batch"
	warm.Requests = 2
	if _, err := Run(context.Background(), warm); err != nil {
		t.Fatal(err)
	}

	single := base
	single.Workload = "single"
	single.Requests = 200
	sres, err := Run(context.Background(), single)
	if err != nil {
		t.Fatal(err)
	}
	if sres.Errors != 0 {
		t.Fatalf("single-phase errors: %+v", sres)
	}

	batch := base
	batch.Workload = "batch"
	batch.Requests = 10
	bres, err := Run(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	if bres.Errors != 0 {
		t.Fatalf("batch-phase errors: %+v", bres)
	}

	if bres.ItemsPerSec < 5*sres.ItemsPerSec {
		t.Fatalf("batch speedup = %.1fx (batch %.0f items/s vs single %.0f items/s), want ≥ 5x",
			bres.ItemsPerSec/sres.ItemsPerSec, bres.ItemsPerSec, sres.ItemsPerSec)
	}
}

// TestRPSPacing: the pacer must hold request volume near the target
// rate rather than free-running.
func TestRPSPacing(t *testing.T) {
	ts := testServer(t)
	res, err := Run(context.Background(), Options{
		BaseURL:     ts.URL,
		Duration:    500 * time.Millisecond,
		RPS:         20,
		Concurrency: 4,
		Workload:    "single",
		Types:       5,
		Limit:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// ~10 ticks fire in 500ms at 20/s; allow generous scheduling slop
	// but catch free-running (hundreds of requests).
	if res.Requests < 2 || res.Requests > 20 {
		t.Fatalf("paced run sent %d requests in 500ms at 20 rps", res.Requests)
	}
}

// TestCoalesceProbe: concurrent identical cold zoo requests against the
// real server must come back byte-identical.
func TestCoalesceProbe(t *testing.T) {
	ts := testServer(t)
	n, err := CoalesceProbe(context.Background(), nil, ts.URL+"/v1/zoo?limit=4", 6)
	if err != nil {
		t.Fatal(err)
	}
	if n != 6 {
		t.Fatalf("probe ok = %d, want 6", n)
	}
}

// TestRateLimitedRun: against a tightly limited server the generator
// must classify 429s as "limited", not errors.
func TestRateLimitedRun(t *testing.T) {
	ts := testServer(t, "-rate", "1", "-burst", "2")
	res, err := Run(context.Background(), Options{
		BaseURL:     ts.URL,
		Requests:    20,
		Concurrency: 4,
		Workload:    "single",
		Types:       5,
		Limit:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Limited == 0 {
		t.Fatalf("20 rapid requests at 1 rps burst 2 produced no 429s: %+v", res)
	}
	if res.Errors != 0 {
		t.Fatalf("429s misclassified as errors: %+v", res)
	}
}

// TestRunWithTrace stamps every request with a client-minted trace ID
// and checks the contract end to end: the report lists the slowest
// requests' IDs (sorted, bounded, well-formed) and the server's flight
// recorder can serve the span tree for the very worst one.
func TestRunWithTrace(t *testing.T) {
	ts := testServer(t)
	res, err := Run(context.Background(), Options{
		BaseURL:     ts.URL,
		Requests:    30,
		Concurrency: 4,
		Workload:    "single",
		Trace:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors > 0 {
		t.Fatalf("%d request errors", res.Errors)
	}
	if len(res.Worst) == 0 || len(res.Worst) > worstTraceCap {
		t.Fatalf("worst traces = %d, want 1..%d", len(res.Worst), worstTraceCap)
	}
	for i, wt := range res.Worst {
		if !obs.ValidTraceID(wt.Trace) {
			t.Errorf("worst[%d] trace %q not a valid trace ID", i, wt.Trace)
		}
		if i > 0 && wt.Seconds > res.Worst[i-1].Seconds {
			t.Errorf("worst list not sorted slowest-first at %d", i)
		}
	}

	// The client-minted ID forced sampling server-side: the recorder
	// must hold the worst request's span tree.
	resp, err := http.Get(ts.URL + "/debug/requests/" + res.Worst[0].Trace)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/requests/%s = %d, want 200", res.Worst[0].Trace, resp.StatusCode)
	}
}
