// Command rcserve runs the recoverable-consensus classification HTTP
// service. The whole implementation — routes, flags, traffic controls —
// lives in internal/serve so that tests, the bench harness and rcload
// can run the exact production handler in-process; see that package's
// documentation for the endpoint and flag reference.
package main

import (
	"fmt"
	"os"

	"rcons/internal/serve"
)

func main() {
	if err := serve.Run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rcserve:", err)
		os.Exit(1)
	}
}
