package main

import "testing"

func TestRunClassify(t *testing.T) {
	if err := run([]string{"-type", "S_2", "-limit", "4", "-witness"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunClassifyParallel(t *testing.T) {
	if err := run([]string{"-type", "S_2", "-limit", "4", "-parallel", "-1", "-witness"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-type", "T_4", "-limit", "4", "-parallel", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunDiagram(t *testing.T) {
	if err := run([]string{"-type", "T_4", "-limit", "4", "-diagram"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunNonReadableNote(t *testing.T) {
	if err := run([]string{"-type", "stack", "-limit", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing -type accepted")
	}
	if err := run([]string{"-type", "bogus"}); err == nil {
		t.Error("unknown type accepted")
	}
	if err := run([]string{"-badflag"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunCustomSpec(t *testing.T) {
	if err := run([]string{"-spec", "../../testdata/sticky.json", "-limit", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCustomSpecMissingFile(t *testing.T) {
	if err := run([]string{"-spec", "/nonexistent.json"}); err == nil {
		t.Error("missing spec file accepted")
	}
}

func TestRunModelCheckList(t *testing.T) {
	if err := run([]string{"-mc-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunModelCheckSafe(t *testing.T) {
	if err := run([]string{"-mc", "cas", "-mc-depth", "8", "-mc-crashes", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunModelCheckViolation(t *testing.T) {
	// The broken protocol must make -mc exit non-zero with a verdict.
	err := run([]string{"-mc", "unsafe-noyield", "-mc-depth", "12"})
	if err == nil {
		t.Fatal("model checking the broken protocol reported success")
	}
}

func TestRunModelCheckErrors(t *testing.T) {
	if err := run([]string{"-mc", "no-such-protocol"}); err == nil {
		t.Error("unknown -mc target accepted")
	}
	if err := run([]string{"-mc", "cas", "-mc-n", "1"}); err == nil {
		t.Error("-mc-n 1 accepted")
	}
}

func TestRunProgress(t *testing.T) {
	// -progress needs a search that publishes: engine (-parallel) or -mc.
	if err := run([]string{"-type", "S_2", "-limit", "3", "-progress", "5ms"}); err == nil {
		t.Error("-progress without -parallel/-mc accepted")
	}
	if err := run([]string{"-type", "S_2", "-limit", "4", "-parallel", "2", "-progress", "5ms"}); err != nil {
		t.Fatalf("-parallel -progress: %v", err)
	}
	if err := run([]string{"-mc", "cas", "-mc-depth", "8", "-progress", "5ms"}); err != nil {
		t.Fatalf("-mc -progress: %v", err)
	}
}

func TestRunClassifyStore(t *testing.T) {
	dir := t.TempDir()
	// Cold run computes and persists; warm run must succeed against the
	// same directory (served from the store).
	for i := 0; i < 2; i++ {
		if err := run([]string{"-type", "S_2", "-limit", "4", "-parallel", "2", "-store", dir}); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
	}
	// -store without the engine is a usage error.
	if err := run([]string{"-type", "S_2", "-store", dir}); err == nil {
		t.Fatal("-store without -parallel accepted")
	}
}
