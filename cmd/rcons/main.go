// Command rcons classifies a shared object type in the recoverable
// consensus hierarchy: it scans the n-recording (Definition 4) and
// n-discerning (Definition 2) properties and prints the cons/rcons bands
// the paper's theorems imply, optionally with witnesses and the full
// transition diagram.
//
// It also fronts the crash-schedule model checker (internal/mc): -mc
// systematically verifies one of the repository's RC protocols against
// every interleaving and crash placement within a depth/crash budget,
// printing a minimal replayable counterexample on violation.
//
// Usage:
//
//	rcons -type S_3 [-limit 6] [-parallel 0] [-store DIR] [-witness] [-diagram]
//	rcons -list
//	rcons -mc team-sn [-mc-n 2] [-mc-depth 8] [-mc-crashes 1]
//	rcons -mc-list
//
// With -progress DURATION (and -parallel or -mc), live search-progress
// lines — nodes explored, nodes/sec, depth, memoization hit rates — are
// printed to stderr at that interval, plus one final line on completion.
//
// With -parallel and -store DIR, memoized search results are read from
// and written through to the same crash-safe content-addressed store
// rcatlas and rcserve use, so a classification computed once — by any
// of the three binaries — is never recomputed.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"rcons/internal/checker"
	"rcons/internal/engine"
	"rcons/internal/harness"
	"rcons/internal/mc"
	"rcons/internal/obs"
	"rcons/internal/spec"
	"rcons/internal/store"
	"rcons/internal/types"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rcons:", err)
		os.Exit(1)
	}
}

// buildPersist assembles the engine's persist backend from the
// -store/-store-budget/-store-peer flags: the local store first (the
// budgeted writer), then each peer replica, chained with read-through
// write-back when both are present. nil when neither flag is set.
func buildPersist(dir, budget, peers string, peerTimeout time.Duration) (engine.Persist, error) {
	var tiers []store.Backend
	if budget != "" && dir == "" {
		return nil, fmt.Errorf("-store-budget requires -store")
	}
	if dir != "" {
		opts := store.Options{}
		if budget != "" {
			b, err := store.ParseSize(budget)
			if err != nil {
				return nil, fmt.Errorf("-store-budget: %w", err)
			}
			opts.BudgetBytes = b
		}
		st, err := store.Open(dir, opts)
		if err != nil {
			return nil, err
		}
		tiers = append(tiers, st)
	}
	for _, u := range strings.Split(peers, ",") {
		if u = strings.TrimSpace(u); u == "" {
			continue
		}
		p, err := store.NewPeer(u, peerTimeout)
		if err != nil {
			return nil, err
		}
		tiers = append(tiers, p)
	}
	switch len(tiers) {
	case 0:
		return nil, nil
	case 1:
		return tiers[0], nil
	default:
		return store.NewChain(tiers...), nil
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rcons", flag.ContinueOnError)
	typeName := fs.String("type", "", "type to classify (e.g. register, cas, stack, T_5, S_3)")
	specFile := fs.String("spec", "", "classify a custom type from a JSON transition table instead of a built-in")
	limit := fs.Int("limit", 6, "scan the properties for n = 2..limit")
	parallel := fs.Int("parallel", 0, "classify on the sharded engine with this many workers (-1 = all CPUs, 0 = sequential)")
	storeDir := fs.String("store", "", "with -parallel: persist memoized searches in this store directory")
	storeBudget := fs.String("store-budget", "", "disk budget for -store, e.g. 256M (empty = unlimited)")
	storePeer := fs.String("store-peer", "", "with -parallel: comma-separated peer rcserve base URLs to read memoized searches through")
	peerTimeout := fs.Duration("store-peer-timeout", 2*time.Second, "per-fetch deadline for -store-peer reads")
	witness := fs.Bool("witness", false, "print the maximal recording/discerning witnesses")
	diagram := fs.Bool("diagram", false, "print the type's transition diagram")
	list := fs.Bool("list", false, "list the built-in type zoo and exit")
	mcTarget := fs.String("mc", "", "model-check the named RC protocol (see -mc-list) instead of classifying a type")
	mcList := fs.Bool("mc-list", false, "list the model-checkable protocols and exit")
	mcN := fs.Int("mc-n", 2, "process count for -mc")
	mcDepth := fs.Int("mc-depth", 8, "schedule-depth bound for -mc")
	mcCrashes := fs.Int("mc-crashes", 1, "crash-budget bound for -mc")
	mcBudget := fs.Int("mc-budget", 0, "node budget before -mc falls back to swarm fuzzing (0 = default)")
	progress := fs.Duration("progress", 0, "print live search-progress lines to stderr at this interval (e.g. 1s; needs -parallel or -mc)")
	traceSample := fs.Int("trace-sample", 0, "trace 1 in N runs and dump the slowest span trees to stderr on exit (0 = off, 1 = every run)")
	recorderCap := fs.Int("recorder", 16, "completed traces the flight recorder retains for the -trace-sample dump")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *traceSample < 0 {
		return fmt.Errorf("-trace-sample must be ≥ 0, got %d", *traceSample)
	}

	// tracer stays nil (and every span free) without -trace-sample; the
	// deferred dump renders the slowest recorded trees after the run.
	var tracer *obs.Tracer
	if *traceSample > 0 {
		rec := obs.NewRecorder(*recorderCap)
		tracer = obs.NewTracer(*traceSample, rec)
		defer dumpSlowestTraces(rec)
	}

	if *mcList {
		for _, name := range mc.Targets() {
			fmt.Printf("%-20s %s\n", name, mc.TargetDoc(name))
		}
		return nil
	}
	var progressSink obs.Sink
	if *progress > 0 {
		progressSink = obs.NewLineSink(os.Stderr)
	}

	if *mcTarget != "" {
		return runModelCheck(*mcTarget, *mcN, *mcDepth, *mcCrashes, *mcBudget, progressSink, *progress, tracer)
	}

	if *list {
		for _, t := range types.Zoo() {
			readable := "readable"
			if !types.Readable(t) {
				readable = "non-readable"
			}
			fmt.Printf("%-24s %s\n", t.Name(), readable)
		}
		return nil
	}
	var t spec.Type
	switch {
	case *specFile != "":
		data, err := os.ReadFile(*specFile)
		if err != nil {
			return err
		}
		custom, err := types.NewCustomFromJSON(data)
		if err != nil {
			return err
		}
		t = custom
	case *typeName != "":
		var err error
		t, err = types.ByName(*typeName)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("missing -type or -spec (or use -list); try: rcons -type S_3")
	}
	var c checker.Classification
	var err error
	ctx, root := tracer.StartTrace(context.Background(), "rcons.classify", "", false)
	switch {
	case *parallel != 0:
		workers := *parallel
		if workers < 0 {
			workers = 0 // engine default: all CPUs
		}
		opts := engine.Options{Workers: workers}
		persist, serr := buildPersist(*storeDir, *storeBudget, *storePeer, *peerTimeout)
		if serr != nil {
			return serr
		}
		if persist != nil {
			opts.Persist = persist
		}
		eng := engine.New(opts)
		if progressSink != nil {
			stop := eng.PublishProgress(*progress, progressSink, "")
			defer stop()
		}
		c, err = eng.Classify(ctx, t, *limit)
	case *storeDir != "" || *storePeer != "":
		return fmt.Errorf("-store/-store-peer need the engine: pass -parallel N (e.g. -parallel -1)")
	case progressSink != nil:
		return fmt.Errorf("-progress needs a publishing search: pass -parallel N or -mc TARGET")
	default:
		c, err = checker.Classify(t, *limit, nil)
	}
	if err != nil {
		root.MarkError()
		root.End()
		return err
	}
	root.End()

	fmt.Printf("type:            %s\n", c.TypeName)
	fmt.Printf("readable:        %v\n", c.Readable)
	fmt.Printf("max n-discerning: %s\n", c.Discerning)
	fmt.Printf("max n-recording:  %s\n", c.Recording)
	fmt.Printf("cons band:       %s\n", c.ConsBand())
	fmt.Printf("rcons band:      %s\n", c.RconsBand())
	if !c.Readable {
		fmt.Println("note: type is not readable — Theorems 3 and 8 do not apply, so the")
		fmt.Println("      property levels above imply no lower bounds (cf. Appendix H).")
	}

	if *witness {
		if c.Recording.Witness != nil {
			fmt.Printf("recording witness (n=%d):  %s\n", c.Recording.Witness.N(), c.Recording.Witness)
		}
		if c.Discerning.Witness != nil {
			fmt.Printf("discerning witness (n=%d): %s\n", c.Discerning.Witness.N(), c.Discerning.Witness)
		}
	}
	if *diagram {
		q0 := t.InitialStates()[0]
		d, err := harness.Diagram(t, q0)
		if err != nil {
			return err
		}
		fmt.Println(strings.TrimRight(d, "\n"))
	}
	return nil
}

// runModelCheck drives internal/mc for the -mc mode and renders the
// verdict, stats and any counterexample.
func runModelCheck(target string, n, depth, crashes, nodeBudget int, progress obs.Sink, interval time.Duration, tracer *obs.Tracer) error {
	tgt, err := mc.TargetByName(target, n)
	if err != nil {
		return err
	}
	ctx, root := tracer.StartTrace(context.Background(), "rcons.mc", "", false)
	defer root.End()
	res, err := mc.Check(ctx, tgt, mc.Options{
		MaxDepth:         depth,
		CrashBudget:      crashes,
		NodeBudget:       nodeBudget,
		Progress:         progress,
		ProgressInterval: interval,
	})
	if err != nil {
		root.MarkError()
		return err
	}

	mode := "swarm fuzzing (node budget exceeded)"
	switch {
	case res.Complete:
		mode = "exhaustive, complete (whole space within the crash budget)"
	case res.Exhaustive:
		mode = "exhaustive within the depth bound"
	}
	fmt.Printf("target:      %s (n=%d, %s crashes)\n", res.Target, n, res.Model)
	fmt.Printf("bounds:      depth ≤ %d, crashes ≤ %d\n", res.MaxDepth, res.CrashBudget)
	fmt.Printf("mode:        %s\n", mode)
	fmt.Printf("effort:      %d prefixes, %d pruned, %d completions, %d swarm runs, %d rounds\n",
		res.Stats.Nodes, res.Stats.Pruned, res.Stats.Completions, res.Stats.SwarmRuns, res.Stats.Rounds)
	if res.Safe {
		fmt.Println("verdict:     SAFE")
		return nil
	}
	fmt.Println("verdict:     VIOLATION")
	fmt.Printf("minimal counterexample (replayable):\n%s", res.CE)
	return fmt.Errorf("model checking found a violation in %s", res.Target)
}

// dumpSlowestTraces renders the recorded span trees slowest-first on
// stderr, keeping stdout parseable for scripts.
func dumpSlowestTraces(rec *obs.Recorder) {
	for _, tr := range rec.Slowest() {
		fmt.Fprintln(os.Stderr)
		obs.WriteTraceTree(os.Stderr, tr)
	}
}
