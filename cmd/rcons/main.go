// Command rcons classifies a shared object type in the recoverable
// consensus hierarchy: it scans the n-recording (Definition 4) and
// n-discerning (Definition 2) properties and prints the cons/rcons bands
// the paper's theorems imply, optionally with witnesses and the full
// transition diagram.
//
// Usage:
//
//	rcons -type S_3 [-limit 6] [-parallel 0] [-witness] [-diagram]
//	rcons -list
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"rcons/internal/checker"
	"rcons/internal/engine"
	"rcons/internal/harness"
	"rcons/internal/spec"
	"rcons/internal/types"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rcons:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rcons", flag.ContinueOnError)
	typeName := fs.String("type", "", "type to classify (e.g. register, cas, stack, T_5, S_3)")
	specFile := fs.String("spec", "", "classify a custom type from a JSON transition table instead of a built-in")
	limit := fs.Int("limit", 6, "scan the properties for n = 2..limit")
	parallel := fs.Int("parallel", 0, "classify on the sharded engine with this many workers (-1 = all CPUs, 0 = sequential)")
	witness := fs.Bool("witness", false, "print the maximal recording/discerning witnesses")
	diagram := fs.Bool("diagram", false, "print the type's transition diagram")
	list := fs.Bool("list", false, "list the built-in type zoo and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, t := range types.Zoo() {
			readable := "readable"
			if !types.Readable(t) {
				readable = "non-readable"
			}
			fmt.Printf("%-24s %s\n", t.Name(), readable)
		}
		return nil
	}
	var t spec.Type
	switch {
	case *specFile != "":
		data, err := os.ReadFile(*specFile)
		if err != nil {
			return err
		}
		custom, err := types.NewCustomFromJSON(data)
		if err != nil {
			return err
		}
		t = custom
	case *typeName != "":
		var err error
		t, err = types.ByName(*typeName)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("missing -type or -spec (or use -list); try: rcons -type S_3")
	}
	var c checker.Classification
	var err error
	if *parallel != 0 {
		workers := *parallel
		if workers < 0 {
			workers = 0 // engine default: all CPUs
		}
		eng := engine.New(engine.Options{Workers: workers})
		c, err = eng.Classify(context.Background(), t, *limit)
	} else {
		c, err = checker.Classify(t, *limit, nil)
	}
	if err != nil {
		return err
	}

	fmt.Printf("type:            %s\n", c.TypeName)
	fmt.Printf("readable:        %v\n", c.Readable)
	fmt.Printf("max n-discerning: %s\n", c.Discerning)
	fmt.Printf("max n-recording:  %s\n", c.Recording)
	fmt.Printf("cons band:       %s\n", c.ConsBand())
	fmt.Printf("rcons band:      %s\n", c.RconsBand())
	if !c.Readable {
		fmt.Println("note: type is not readable — Theorems 3 and 8 do not apply, so the")
		fmt.Println("      property levels above imply no lower bounds (cf. Appendix H).")
	}

	if *witness {
		if c.Recording.Witness != nil {
			fmt.Printf("recording witness (n=%d):  %s\n", c.Recording.Witness.N(), c.Recording.Witness)
		}
		if c.Discerning.Witness != nil {
			fmt.Printf("discerning witness (n=%d): %s\n", c.Discerning.Witness.N(), c.Discerning.Witness)
		}
	}
	if *diagram {
		q0 := t.InitialStates()[0]
		d, err := harness.Diagram(t, q0)
		if err != nil {
			return err
		}
		fmt.Println(strings.TrimRight(d, "\n"))
	}
	return nil
}
