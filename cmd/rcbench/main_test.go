package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rcons/internal/bench"
)

func TestListRuns(t *testing.T) {
	var out strings.Builder
	if code := run([]string{"-list"}, &out); code != 0 {
		t.Fatalf("rcbench -list exited %d:\n%s", code, out.String())
	}
	for _, want := range []string{"harness/E10", "mc/fingerprint-incremental", "mc/fingerprint-legacy", "sim/snapshot", "obs/counter-inc", "obs/histogram-observe"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-list output missing %s", want)
		}
	}
}

func TestBadFlagsAndFilters(t *testing.T) {
	var out strings.Builder
	if code := run([]string{"-run", "("}, &out); code != 1 {
		t.Fatalf("bad -run pattern exited %d", code)
	}
	out.Reset()
	if code := run([]string{"-run", "no-such-benchmark", "-baseline", "", "-out", ""}, &out); code != 1 {
		t.Fatalf("empty selection exited %d:\n%s", code, out.String())
	}
}

// TestQuickSubsetWritesArtifact runs the two cheapest real benchmarks
// end to end into a temp dir and checks the artifact round-trips.
func TestQuickSubsetWritesArtifact(t *testing.T) {
	dir := t.TempDir()
	outPath := filepath.Join(dir, "BENCH_0.json")
	var out strings.Builder
	code := run([]string{"-quick", "-run", `^sim/(snapshot|digest)$`, "-dir", dir, "-out", outPath}, &out)
	if code != 0 {
		t.Fatalf("rcbench exited %d:\n%s", code, out.String())
	}
	f, err := bench.ReadJSON(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if f.Mode != "quick" || len(f.Results) != 2 {
		t.Fatalf("artifact mode=%q results=%d, want quick/2", f.Mode, len(f.Results))
	}
	for _, r := range f.Results {
		if r.NsPerOp <= 0 {
			t.Errorf("%s: ns_per_op = %v", r.Name, r.NsPerOp)
		}
	}
}

// TestObsMicrosAndTelemetrySnapshot runs the telemetry micro-benchmarks
// end to end and checks the artifact carries the registry snapshot.
func TestObsMicrosAndTelemetrySnapshot(t *testing.T) {
	dir := t.TempDir()
	outPath := filepath.Join(dir, "BENCH_0.json")
	var out strings.Builder
	code := run([]string{"-quick", "-run", `^obs/`, "-dir", dir, "-out", outPath}, &out)
	if code != 0 {
		t.Fatalf("rcbench exited %d:\n%s", code, out.String())
	}
	f, err := bench.ReadJSON(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Results) != 2 {
		t.Fatalf("got %d results, want obs/counter-inc + obs/histogram-observe", len(f.Results))
	}
	// The obs micros use private registries, so the process-wide
	// snapshot may be empty here — but if any mc benchmark ran earlier
	// in this process, its published totals must round-trip.
	if f.Telemetry != nil {
		for k, v := range f.Telemetry {
			if v < 0 {
				t.Errorf("telemetry %s = %v", k, v)
			}
		}
	}
}

// TestRegressionGate fabricates a fast baseline, re-runs the same
// benchmark, and expects exit code 2 (regression beyond threshold) —
// then exit 0 with -fail=false and with a huge threshold.
func TestRegressionGate(t *testing.T) {
	dir := t.TempDir()
	fast := bench.NewFile("quick", []bench.Result{{Name: "sim/digest", Iters: 1, NsPerOp: 0.0001}})
	if err := fast.WriteJSON(filepath.Join(dir, "BENCH_0.json")); err != nil {
		t.Fatal(err)
	}
	args := []string{"-quick", "-run", `^sim/digest$`, "-dir", dir, "-out", filepath.Join(dir, "BENCH_1.json")}

	var out strings.Builder
	if code := run(args, &out); code != 2 {
		t.Fatalf("regression not detected (exit %d):\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("missing REGRESSION banner:\n%s", out.String())
	}
	out.Reset()
	if code := run(append(args, "-fail=false"), &out); code != 0 {
		t.Fatalf("-fail=false still exited %d", code)
	}
	out.Reset()
	if code := run(append(args, "-threshold", "1e12"), &out); code != 0 {
		t.Fatalf("huge threshold still exited %d:\n%s", code, out.String())
	}
}

// TestAutoBaselineAndFilteredRunWritesNothing checks artifact
// discovery: with BENCH_2.json present it is auto-picked as baseline,
// and a -run-filtered invocation with the default "auto" output writes
// NO new artifact (a partial file would silently become the next
// baseline and shrink the gate).
func TestAutoBaselineAndFilteredRunWritesNothing(t *testing.T) {
	dir := t.TempDir()
	seed := bench.NewFile("quick", []bench.Result{{Name: "sim/digest", Iters: 1, NsPerOp: 1e12}})
	if err := seed.WriteJSON(filepath.Join(dir, "BENCH_2.json")); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	code := run([]string{"-quick", "-run", `^sim/digest$`, "-dir", dir}, &out)
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "baseline: "+filepath.Join(dir, "BENCH_2.json")) {
		t.Errorf("auto baseline not picked:\n%s", out.String())
	}
	if _, err := os.Stat(filepath.Join(dir, "BENCH_3.json")); err == nil {
		t.Error("filtered run wrote an auto-numbered partial artifact")
	}
	if !strings.Contains(out.String(), "not writing an auto-numbered artifact") {
		t.Errorf("missing filtered-run note:\n%s", out.String())
	}
	// The giant baseline makes this run a huge improvement — marked ++.
	if !strings.Contains(out.String(), "++") {
		t.Errorf("improvement marker missing:\n%s", out.String())
	}
}

// TestAutoNumberingUnfiltered checks an unfiltered run auto-numbers the
// next artifact; the registry subset is simulated with an explicit -out
// elsewhere, so this uses the real registry only via -list (cheap) and
// exercises numbering through an explicit tiny filter with -out.
func TestAutoNumberingUnfiltered(t *testing.T) {
	dir := t.TempDir()
	seed := bench.NewFile("quick", []bench.Result{{Name: "sim/digest", Iters: 1, NsPerOp: 10}})
	if err := seed.WriteJSON(filepath.Join(dir, "BENCH_7.json")); err != nil {
		t.Fatal(err)
	}
	path, idx, err := bench.LatestArtifact(dir)
	if err != nil || idx != 7 || path != filepath.Join(dir, "BENCH_7.json") {
		t.Fatalf("LatestArtifact = (%q, %d, %v), want BENCH_7.json/7", path, idx, err)
	}
}

// TestCrossModeGateSkipsWorkloadVaryingBenches pins the mode-mismatch
// rule: a full-mode baseline whose harness/E1 entry is absurdly fast
// must NOT fail a -quick run (the quick experiment does less work), but
// a fixed-workload benchmark still gates across modes.
func TestCrossModeGateSkipsWorkloadVaryingBenches(t *testing.T) {
	dir := t.TempDir()
	basefile := bench.NewFile("full", []bench.Result{
		{Name: "harness/E3", Iters: 2, NsPerOp: 0.0001}, // would regress wildly if gated
		{Name: "sim/digest", Iters: 1, NsPerOp: 1e12},   // comparable; huge improvement
	})
	if err := basefile.WriteJSON(filepath.Join(dir, "BENCH_0.json")); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	code := run([]string{"-quick", "-run", `^(harness/E3|sim/digest)$`, "-dir", dir,
		"-out", filepath.Join(dir, "BENCH_1.json")}, &out)
	if code != 0 {
		t.Fatalf("cross-mode run exited %d (workload-varying bench gated?):\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "workload-varying benchmarks excluded") {
		t.Errorf("missing cross-mode note:\n%s", out.String())
	}
	// The measurement line for E3 is fine; a comparison (ratio) line
	// would mean the workload-varying bench was gated across modes.
	for _, line := range strings.Split(out.String(), "\n") {
		if strings.Contains(line, "harness/E3") && strings.Contains(line, "x  (") {
			t.Errorf("harness/E3 still compared across modes: %s", line)
		}
	}
}

func TestCompareThreshold(t *testing.T) {
	base := []bench.Result{{Name: "a", NsPerOp: 100}, {Name: "gone", NsPerOp: 50}}
	cur := []bench.Result{{Name: "a", NsPerOp: 130}, {Name: "new", NsPerOp: 10}}
	deltas := bench.Compare(base, cur, 0.25)
	if len(deltas) != 1 {
		t.Fatalf("got %d deltas, want 1 (unmatched names ignored)", len(deltas))
	}
	if !deltas[0].Regressed {
		t.Errorf("30%% slowdown not flagged at 25%% threshold: %+v", deltas[0])
	}
	if d := bench.Compare(base, cur, 0.5); d[0].Regressed {
		t.Errorf("30%% slowdown flagged at 50%% threshold")
	}
}
