// Command rcbench is the repository's benchmark and regression driver:
// it runs the registered benchmark suite (internal/bench — the harness
// experiment workloads plus model-checker, engine and simulator
// micro-benchmarks) with fixed iteration budgets, writes a
// machine-readable BENCH_<n>.json artifact, and compares the run
// against the previous committed BENCH_*.json, failing on regressions
// beyond a configurable threshold.
//
// Usage:
//
//	rcbench                 # full budgets, auto-numbered BENCH_<n+1>.json
//	rcbench -quick          # trimmed budgets (CI)
//	rcbench -out BENCH_3.json   # overwrite a specific artifact (the
//	                            # existing file is read as baseline first)
//	rcbench -run 'mc/'      # only benchmarks matching the regexp
//	rcbench -list           # print the registry and exit
//
// Exit codes: 0 ok, 1 execution error, 2 regression beyond threshold.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"

	"rcons/internal/bench"
	"rcons/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, stdout io.Writer) int {
	fs := flag.NewFlagSet("rcbench", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		quick     = fs.Bool("quick", false, "use trimmed iteration budgets (CI mode)")
		out       = fs.String("out", "auto", `artifact path; "auto" picks BENCH_<n+1>.json, "" skips writing`)
		baseline  = fs.String("baseline", "auto", `baseline path; "auto" picks the latest BENCH_*.json, "" disables comparison`)
		dir       = fs.String("dir", ".", "directory for auto-discovered artifacts")
		threshold = fs.Float64("threshold", 0.25, "fail when ns/op regresses by more than this fraction")
		failRegr  = fs.Bool("fail", true, "exit 2 on regression beyond the threshold")
		runFilter = fs.String("run", "", "only run benchmarks whose name matches this regexp")
		list      = fs.Bool("list", false, "list registered benchmarks and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}
	bench.SetQuick(*quick)
	mode := "full"
	if *quick {
		mode = "quick"
	}

	registry := bench.Registry()
	if *list {
		for _, bm := range registry {
			fmt.Fprintf(stdout, "%-32s iters=%d quick=%d  %s\n", bm.Name, bm.Iters, bm.QuickIters, bm.Doc)
		}
		return 0
	}
	var filter *regexp.Regexp
	if *runFilter != "" {
		var err error
		if filter, err = regexp.Compile(*runFilter); err != nil {
			fmt.Fprintf(stdout, "rcbench: bad -run pattern: %v\n", err)
			return 1
		}
	}

	// Resolve the baseline BEFORE writing anything: -out may legitimately
	// point at the same file (CI overwrites the committed artifact and
	// uploads the result).
	var base *bench.File
	basePath := *baseline
	if basePath == "auto" {
		p, _, err := bench.LatestArtifact(*dir)
		if err != nil {
			fmt.Fprintf(stdout, "rcbench: scanning %s: %v\n", *dir, err)
			return 1
		}
		basePath = p
	}
	if basePath != "" {
		var err error
		if base, err = bench.ReadJSON(basePath); err != nil {
			fmt.Fprintf(stdout, "rcbench: baseline: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "baseline: %s (%s, %s mode)\n", basePath, base.Created, base.Mode)
	} else {
		fmt.Fprintln(stdout, "baseline: none")
	}

	outPath := *out
	if outPath == "auto" {
		if filter != nil {
			// A filtered run measures a subset; auto-numbering it would
			// make the partial file the next auto-discovered baseline and
			// silently shrink the regression gate. Demand an explicit -out.
			fmt.Fprintln(stdout, "note: -run filter active; not writing an auto-numbered artifact (pass -out explicitly to keep a partial file)")
			outPath = ""
		} else {
			_, idx, err := bench.LatestArtifact(*dir)
			if err != nil {
				fmt.Fprintf(stdout, "rcbench: scanning %s: %v\n", *dir, err)
				return 1
			}
			outPath = filepath.Join(*dir, fmt.Sprintf("BENCH_%d.json", idx+1))
		}
	}

	var results []bench.Result
	byName := map[string]bench.Benchmark{}
	for _, bm := range registry {
		if filter != nil && !filter.MatchString(bm.Name) {
			continue
		}
		byName[bm.Name] = bm
		res, err := bench.Measure(bm, bm.Budget(*quick))
		if err != nil {
			fmt.Fprintf(stdout, "rcbench: %v\n", err)
			return 1
		}
		line := fmt.Sprintf("%-32s %12.0f ns/op %10.1f allocs/op", res.Name, res.NsPerOp, res.AllocsPerOp)
		if nps, ok := res.Metrics["nodes_per_sec"]; ok {
			line += fmt.Sprintf(" %12.0f nodes/sec", nps)
		}
		fmt.Fprintln(stdout, line)
		results = append(results, res)
	}
	if len(results) == 0 {
		fmt.Fprintln(stdout, "rcbench: no benchmarks matched")
		return 1
	}
	bench.SortResults(results)
	// Tear down fixtures that outlive their measurement (the serve/*
	// warm servers) before any confirmation re-measurements below —
	// their live heap would tax every later allocating benchmark's GC.
	bench.RunCleanups()

	gates := map[string][]string{}
	for _, bm := range registry {
		if len(bm.GateMetrics) > 0 {
			gates[bm.Name] = bm.GateMetrics
		}
	}
	baseResults := gateBaseline(stdout, base, mode, registry)

	// A single timed sample against a 25% gate makes millisecond-scale
	// benchmarks a coin flip on a noisy host. Before trusting a
	// regression, re-measure just the offenders (up to twice) and keep
	// the best observation per quantity: only reproducible slowdowns
	// survive, and genuine ones fail exactly as before.
	for attempt := 0; attempt < 2 && baseResults != nil; attempt++ {
		regressed := map[string]bool{}
		for _, d := range append(bench.Compare(baseResults, results, *threshold),
			bench.CompareMetrics(baseResults, results, *threshold, gates)...) {
			if d.Regressed {
				regressed[d.Name] = true
			}
		}
		if len(regressed) == 0 {
			break
		}
		for i, r := range results {
			if !regressed[r.Name] {
				continue
			}
			bm, ok := byName[r.Name]
			if !ok {
				continue
			}
			fmt.Fprintf(stdout, "note: re-measuring %s to confirm regression\n", r.Name)
			again, err := bench.Measure(bm, bm.Budget(*quick))
			if err != nil {
				fmt.Fprintf(stdout, "rcbench: %v\n", err)
				return 1
			}
			results[i] = bench.BestOf(r, again)
		}
	}

	if outPath != "" {
		f := bench.NewFile(mode, results)
		// The runners published their work totals (mc nodes, census
		// rows, ...) through the process-wide registry; freeze them
		// into the artifact.
		f.Telemetry = obs.Default().Snapshot()
		if err := f.WriteJSON(outPath); err != nil {
			fmt.Fprintf(stdout, "rcbench: writing artifact: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s (%d benchmarks, %s mode)\n", outPath, len(results), mode)
	}

	if baseResults == nil {
		return 0
	}
	deltas := bench.Compare(baseResults, results, *threshold)
	deltas = append(deltas, bench.CompareMetrics(baseResults, results, *threshold, gates)...)
	regressed := false
	for _, d := range deltas {
		tag := "  "
		switch {
		case d.Regressed:
			tag = "!!"
			regressed = true
		case d.Ratio < 0.8:
			tag = "++"
		}
		label, unit := d.Name, "ns/op"
		if d.Metric != "" {
			label = d.Name + " [" + d.Metric + "]"
			unit = d.Metric
		}
		fmt.Fprintf(stdout, "%s %-32s %8.2fx  (%g -> %g %s)\n", tag, label, d.Ratio, d.OldNs, d.NewNs, unit)
	}
	if regressed {
		fmt.Fprintf(stdout, "rcbench: REGRESSION beyond %.0f%% vs %s\n", *threshold*100, basePath)
		if *failRegr {
			return 2
		}
	}
	return 0
}

// gateBaseline returns the baseline results the regression gate may
// compare against, or nil when there is no baseline. When the baseline
// was recorded in the other mode, workload-varying benchmarks (the
// harness experiments trim their per-iteration work in quick mode, not
// just the iteration count) are excluded — their ns/op are
// incomparable across modes.
func gateBaseline(stdout io.Writer, base *bench.File, mode string, registry []bench.Benchmark) []bench.Result {
	if base == nil {
		return nil
	}
	if base.Mode == mode {
		return base.Results
	}
	varies := map[string]bool{}
	for _, bm := range registry {
		if bm.WorkloadVaries {
			varies[bm.Name] = true
		}
	}
	kept := []bench.Result{}
	for _, r := range base.Results {
		if !varies[r.Name] {
			kept = append(kept, r)
		}
	}
	fmt.Fprintf(stdout, "note: baseline mode %q != current mode %q; workload-varying benchmarks excluded from the gate\n",
		base.Mode, mode)
	return kept
}
