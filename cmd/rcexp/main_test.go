package main

import "testing"

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-only", "E5", "-seeds", "3", "-maxn", "3", "-limit", "4"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMarkdown(t *testing.T) {
	if err := run([]string{"-only", "E7", "-seeds", "3", "-markdown"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Error("unknown flag accepted")
	}
}
