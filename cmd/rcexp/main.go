// Command rcexp runs the paper-reproduction experiments (one per figure
// of "When Is Recoverable Consensus Harder Than Consensus?", PODC 2022)
// and prints their reports. See harness.All for the experiment index.
//
// Usage:
//
//	rcexp [-seeds 60] [-maxn 5] [-limit 6] [-only E4] [-markdown]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rcons/internal/harness"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rcexp:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rcexp", flag.ContinueOnError)
	seeds := fs.Int("seeds", 60, "random schedules per configuration")
	maxn := fs.Int("maxn", 5, "maximum process count swept")
	limit := fs.Int("limit", 6, "checker scan limit")
	only := fs.String("only", "", "run a single experiment by id (e.g. E4)")
	markdown := fs.Bool("markdown", false, "emit Markdown tables")
	if err := fs.Parse(args); err != nil {
		return err
	}

	opts := harness.Options{Seeds: *seeds, MaxN: *maxn, Limit: *limit}
	failures := 0
	for _, e := range harness.All() {
		if *only != "" && !strings.EqualFold(*only, e.ID) {
			continue
		}
		rep, err := e.Run(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if *markdown {
			printMarkdown(rep)
		} else {
			fmt.Println(rep)
		}
		if !rep.Pass {
			failures++
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d experiment(s) failed to reproduce the paper", failures)
	}
	return nil
}

func printMarkdown(r *harness.Report) {
	status := "PASS"
	if !r.Pass {
		status = "FAIL"
	}
	fmt.Printf("### %s — %s (%s): **%s**\n\n", r.ID, r.Artifact, r.Title, status)
	fmt.Printf("| %s |\n", strings.Join(r.Header, " | "))
	seps := make([]string, len(r.Header))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Printf("| %s |\n", strings.Join(seps, " | "))
	for _, row := range r.Rows {
		fmt.Printf("| %s |\n", strings.Join(row, " | "))
	}
	fmt.Println()
	for _, n := range r.Notes {
		fmt.Printf("> %s\n", n)
	}
	fmt.Println()
}
