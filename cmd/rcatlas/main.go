// Command rcatlas drives the type-universe generator and census
// pipeline (internal/atlas, internal/atlas/census): it enumerates or
// samples machine-generated deterministic types, streams them through
// the parallel classification engine, and writes a versioned,
// byte-reproducible census artifact.
//
// Usage:
//
//	rcatlas enumerate [-states 3 -ops 3 -resps 1] [-json] [-max-raw N]
//	    count (or, with -json, emit as JSON lines) every canonical type
//	    within the bounds
//
//	rcatlas sample [-n 20] [-seed 1] [-states 4 -ops 3 -resps 3] [-mutate]
//	    emit n seeded random tables as JSON lines; with -mutate, emit
//	    mutants of the built-in zoo instead
//
//	rcatlas census [-states 3 -ops 3 -resps 1] [-random 10000]
//	        [-mutants 2] [-seed 1] [-limit 3] [-parallel 0]
//	        [-timeout 60s] [-out ATLAS.json] [-resume prior.json]
//	        [-store DIR] [-progress 2s]
//	    run the full census and write the artifact; -resume reuses the
//	    rows of a previous artifact at the same limit, and -store
//	    persists every classified row (and the engine's memoized
//	    searches) in a crash-safe content-addressed store so reruns —
//	    and rcserve pointed at the same directory — skip finished work
//
//	rcatlas verify -in ATLAS.json [-novel]
//	    check an artifact's structural invariants; with -novel, also
//	    require a generated type outside every zoo rcons band
//
//	rcatlas compact -store DIR [-budget 256M]
//	    offline store compaction: drop quarantine debris, recount the
//	    entry population, and (with -budget) evict LRU entries until the
//	    directory fits
//
// census also accepts -store-budget (cap the store's disk usage with
// size-aware LRU eviction) and -store-peer (read classification results
// through one or more running rcserve replicas' /v1/store routes,
// checksums re-verified on receipt; misses fall back to computing).
//
// The census artifact is byte-identical across reruns with the same
// seed and across -parallel worker counts, so `cmp` on two artifacts is
// a meaningful CI check.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"strings"
	"time"

	"rcons/internal/atlas"
	"rcons/internal/atlas/census"
	"rcons/internal/engine"
	"rcons/internal/obs"
	"rcons/internal/store"
	"rcons/internal/types"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rcatlas:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: rcatlas <enumerate|sample|census|verify> [flags]")
	}
	switch args[0] {
	case "enumerate":
		return runEnumerate(args[1:], stdout)
	case "sample":
		return runSample(args[1:], stdout)
	case "census":
		return runCensus(args[1:], stdout)
	case "verify":
		return runVerify(args[1:], stdout)
	case "compact":
		return runCompact(args[1:], stdout)
	default:
		return fmt.Errorf("unknown subcommand %q (want enumerate, sample, census, verify or compact)", args[0])
	}
}

func boundsFlags(fs *flag.FlagSet, states, ops, resps int) *atlas.Bounds {
	b := &atlas.Bounds{}
	fs.IntVar(&b.States, "states", states, "maximum state count")
	fs.IntVar(&b.Ops, "ops", ops, "maximum operation count")
	fs.IntVar(&b.Resps, "resps", resps, "maximum distinct responses")
	return b
}

func runEnumerate(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("rcatlas enumerate", flag.ContinueOnError)
	b := boundsFlags(fs, 3, 3, 1)
	asJSON := fs.Bool("json", false, "emit each canonical type as one JSON line")
	maxRaw := fs.Int64("max-raw", 50_000_000, "refuse bounds whose raw table count exceeds this")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := b.Valid(); err != nil {
		return err
	}
	if rc := b.RawCount(); rc > *maxRaw {
		return fmt.Errorf("bounds %s enumerate %d raw tables, above the -max-raw budget %d", b, rc, *maxRaw)
	}
	start := time.Now()
	var encErr error
	raw, kept, err := atlas.Enumerate(*b, func(key string, t *atlas.Table) bool {
		if *asJSON {
			data, err := json.Marshal(t.Custom())
			if err != nil {
				encErr = err
				return false
			}
			fmt.Fprintln(stdout, string(data))
		}
		return true
	})
	if err != nil {
		return err
	}
	if encErr != nil {
		return encErr
	}
	fmt.Fprintf(stdout, "enumerated %s: %d raw tables, %d canonical types (%.2fs)\n",
		b, raw, kept, time.Since(start).Seconds())
	return nil
}

func runSample(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("rcatlas sample", flag.ContinueOnError)
	b := boundsFlags(fs, 4, 3, 3)
	n := fs.Int("n", 20, "number of tables to sample")
	seed := fs.Int64("seed", 1, "sampling seed")
	mutate := fs.Bool("mutate", false, "emit mutants of the built-in zoo instead of random tables")
	mutations := fs.Int("mutations", 2, "mutations per mutant (with -mutate)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))
	if *mutate {
		emitted := 0
		for _, zt := range types.Zoo() {
			base, err := atlas.Tabulate(zt, 3, 2048)
			if err != nil {
				continue
			}
			for i := 0; i < *n; i++ {
				m := atlas.Mutate(rng, base, *mutations)
				m.TypeName = fmt.Sprintf("%s~m%d", zt.Name(), i)
				data, err := json.Marshal(m)
				if err != nil {
					return err
				}
				fmt.Fprintln(stdout, string(data))
				emitted++
			}
		}
		fmt.Fprintf(os.Stderr, "rcatlas: %d mutants (%d per zoo type, seed %d)\n", emitted, *n, *seed)
		return nil
	}
	if b.States < 2 {
		return fmt.Errorf("-states must be ≥ 2 for sampling, got %d", b.States)
	}
	for i := 0; i < *n; i++ {
		states := 2 + rng.Intn(b.States-1)
		ops := 1 + rng.Intn(b.Ops)
		resps := 1 + rng.Intn(b.Resps)
		t := atlas.Random(rng, states, ops, resps)
		data, err := json.Marshal(t.Custom())
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, string(data))
	}
	return nil
}

func runCensus(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("rcatlas census", flag.ContinueOnError)
	b := boundsFlags(fs, 3, 3, 1)
	random := fs.Int("random", 10_000, "seeded random tables to add (0 disables)")
	randStates := fs.Int("rand-states", census.DefaultRandomBounds.States, "max states of random tables")
	randOps := fs.Int("rand-ops", census.DefaultRandomBounds.Ops, "max ops of random tables")
	randResps := fs.Int("rand-resps", census.DefaultRandomBounds.Resps, "max responses of random tables")
	mutants := fs.Int("mutants", 2, "mutants per zoo type (0 disables)")
	seed := fs.Int64("seed", 1, "seed for sampling and mutation")
	limit := fs.Int("limit", 3, "classification scan limit (n = 2..limit)")
	parallel := fs.Int("parallel", 0, "concurrent classifications (0 = all CPUs)")
	timeout := fs.Duration("timeout", 60*time.Second, "per-type classification deadline")
	out := fs.String("out", "ATLAS.json", `artifact path ("" skips writing)`)
	resume := fs.String("resume", "", "reuse rows from this prior artifact")
	storeDir := fs.String("store", "", "persist rows + searches in a content-addressed store under this directory")
	storeBudget := fs.String("store-budget", "", "disk budget for -store, e.g. 256M (empty = unlimited)")
	storePeer := fs.String("store-peer", "", "comma-separated peer rcserve base URLs to read results through")
	peerTimeout := fs.Duration("store-peer-timeout", 2*time.Second, "per-fetch deadline for -store-peer reads")
	noEnum := fs.Bool("no-enum", false, "skip the exhaustive enumeration stage")
	maxRaw := fs.Int64("max-raw", 50_000_000, "refuse bounds whose raw table count exceeds this")
	progress := fs.Duration("progress", 0, "print live rows-done/nodes progress lines to stderr at this interval (e.g. 2s)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	engOpts := engine.Options{Workers: *parallel}
	o := census.Options{
		Random:        *random,
		RandomBounds:  atlas.Bounds{States: *randStates, Ops: *randOps, Resps: *randResps},
		MutantsPerZoo: *mutants,
		Seed:          *seed,
		Limit:         *limit,
		Workers:       *parallel,
		Timeout:       *timeout,
	}
	if *progress > 0 {
		o.Progress = obs.NewLineSink(os.Stderr)
		o.ProgressInterval = *progress
	}
	backend, st, err := buildStoreTiers(*storeDir, *storeBudget, *storePeer, *peerTimeout)
	if err != nil {
		return err
	}
	if backend != nil {
		o.Store = backend
		engOpts.Persist = backend
	}
	if st != nil {
		fmt.Fprintf(os.Stderr, "rcatlas: store %s (%d entries, %d bytes)\n",
			*storeDir, st.Stats().Entries, st.Stats().Bytes)
	}
	o.Engine = engine.New(engOpts)
	if !*noEnum {
		if err := b.Valid(); err != nil {
			return err
		}
		if rc := b.RawCount(); rc > *maxRaw {
			return fmt.Errorf("bounds %s enumerate %d raw tables, above the -max-raw budget %d", b, rc, *maxRaw)
		}
		o.Bounds = *b
	}
	if *resume != "" {
		prior, err := census.Load(*resume)
		if err != nil {
			return err
		}
		o.Prior = prior
		fmt.Fprintf(os.Stderr, "rcatlas: resuming from %s (%d rows at limit %d)\n",
			*resume, len(prior.Rows), prior.Limit)
	}
	start := time.Now()
	a, err := census.Run(context.Background(), o)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	if *out != "" {
		if err := a.Save(*out); err != nil {
			return err
		}
	}
	printSummary(stdout, a, elapsed)
	return nil
}

func printSummary(w io.Writer, a *census.Artifact, elapsed time.Duration) {
	fmt.Fprintf(w, "census: %d types (%d raw enumerated, %d generated, %d duplicates) at limit %d in %.2fs",
		a.Types, a.Raw, a.Generated, a.Duplicates, a.Limit, elapsed.Seconds())
	if secs := elapsed.Seconds(); secs > 0 {
		fmt.Fprintf(w, " (%.0f types/sec)", float64(a.Types)/secs)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "rcons band histogram:")
	bands := make([]string, 0, len(a.RconsBands))
	for b := range a.RconsBands {
		bands = append(bands, b)
	}
	sort.Strings(bands)
	for _, b := range bands {
		fmt.Fprintf(w, "  %-6s %6d\n", b, a.RconsBands[b])
	}
	if len(a.NovelRconsBands) > 0 {
		fmt.Fprintf(w, "novel rcons bands (no zoo type there): %v\n", a.NovelRconsBands)
		for _, b := range a.NovelRconsBands {
			if e, ok := a.Extremal.PerRconsBand[b]; ok {
				fmt.Fprintf(w, "  witness for %s: %s\n", b, e.Name)
			}
		}
	} else {
		fmt.Fprintln(w, "novel rcons bands: none")
	}
	fmt.Fprintf(w, "cons>rcons gap gallery: %d entries\n", len(a.Extremal.Gaps))
	if len(a.Skipped) > 0 {
		fmt.Fprintf(w, "WARNING: %d types timed out\n", len(a.Skipped))
	}
}

// buildStoreTiers assembles the persist backend from the shared
// -store/-store-budget/-store-peer flags: the local store first (the
// budgeted writer), then each peer, composed into a read-through chain
// when there is more than one tier. Returns the backend to plug into
// the engine/census (nil when no tier is configured) and the local
// store (nil without -store).
func buildStoreTiers(dir, budget, peers string, peerTimeout time.Duration) (engine.Persist, *store.Store, error) {
	var tiers []store.Backend
	var local *store.Store
	if budget != "" && dir == "" {
		return nil, nil, fmt.Errorf("-store-budget requires -store")
	}
	if dir != "" {
		opts := store.Options{}
		if budget != "" {
			b, err := store.ParseSize(budget)
			if err != nil {
				return nil, nil, fmt.Errorf("-store-budget: %w", err)
			}
			opts.BudgetBytes = b
		}
		st, err := store.Open(dir, opts)
		if err != nil {
			return nil, nil, err
		}
		local = st
		tiers = append(tiers, st)
	}
	for _, u := range strings.Split(peers, ",") {
		if u = strings.TrimSpace(u); u == "" {
			continue
		}
		p, err := store.NewPeer(u, peerTimeout)
		if err != nil {
			return nil, nil, err
		}
		tiers = append(tiers, p)
	}
	switch len(tiers) {
	case 0:
		return nil, nil, nil
	case 1:
		return tiers[0], local, nil
	default:
		return store.NewChain(tiers...), local, nil
	}
}

// runCompact is the offline compaction pass over a store directory:
// quarantine debris is dropped, the entry population recounted, and —
// with -budget — the disk budget applied by LRU eviction.
func runCompact(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("rcatlas compact", flag.ContinueOnError)
	dir := fs.String("store", "", "store directory to compact")
	budget := fs.String("budget", "", "disk budget to enforce, e.g. 256M (empty = keep everything valid)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("compact needs -store <dir>")
	}
	opts := store.Options{CacheEntries: -1}
	if *budget != "" {
		b, err := store.ParseSize(*budget)
		if err != nil {
			return fmt.Errorf("-budget: %w", err)
		}
		opts.BudgetBytes = b
	}
	st, err := store.Open(*dir, opts)
	if err != nil {
		return err
	}
	cs, err := st.Compact(context.Background())
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout,
		"compacted %s: %d quarantined corpses dropped, %d entries (%d bytes), %d evicted for budget\n",
		*dir, cs.QuarantineRemoved, cs.EntriesAfter, cs.BytesAfter, cs.Evicted)
	return nil
}

func runVerify(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("rcatlas verify", flag.ContinueOnError)
	in := fs.String("in", "", "artifact to verify")
	novel := fs.Bool("novel", false, "also require a generated type outside every zoo rcons band")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("verify needs -in <artifact.json>")
	}
	a, err := census.Load(*in)
	if err != nil {
		return err
	}
	if err := a.Verify(*novel); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%s: ok (%d types, %d rcons bands, novel %v)\n",
		*in, a.Types, len(a.RconsBands), a.NovelRconsBands)
	return nil
}
