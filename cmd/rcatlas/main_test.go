package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rcons/internal/atlas/census"
	"rcons/internal/store"
	"rcons/internal/types"
)

func TestEnumerateCounts(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"enumerate", "-states", "2", "-ops", "2", "-resps", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "139 raw tables") {
		t.Fatalf("unexpected enumerate output: %s", out.String())
	}
}

func TestEnumerateJSONLinesAreValidCustoms(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"enumerate", "-states", "2", "-ops", "1", "-resps", "1", "-json"}, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	// Last line is the summary; every other line must re-import cleanly.
	if len(lines) < 2 {
		t.Fatalf("no JSON lines in output: %s", out.String())
	}
	for _, line := range lines[:len(lines)-1] {
		if _, err := types.NewCustomFromJSON([]byte(line)); err != nil {
			t.Fatalf("emitted table does not re-import: %v\n%s", err, line)
		}
	}
}

func TestEnumerateRefusesHugeBounds(t *testing.T) {
	err := run([]string{"enumerate", "-states", "3", "-ops", "3", "-resps", "2", "-max-raw", "1000"}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "-max-raw") {
		t.Fatalf("expected a raw-budget error, got %v", err)
	}
}

func TestSampleEmitsImportableTables(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"sample", "-n", "5", "-seed", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("want 5 samples, got %d", len(lines))
	}
	for _, line := range lines {
		if _, err := types.NewCustomFromJSON([]byte(line)); err != nil {
			t.Fatalf("sample does not re-import: %v\n%s", err, line)
		}
	}
	// Same seed → same bytes.
	var again bytes.Buffer
	if err := run([]string{"sample", "-n", "5", "-seed", "3"}, &again); err != nil {
		t.Fatal(err)
	}
	if out.String() != again.String() {
		t.Fatal("sampling is not seed-deterministic")
	}
}

func TestSampleMutants(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"sample", "-mutate", "-n", "1", "-seed", "1"}, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) < 10 {
		t.Fatalf("expected a mutant per tabulatable zoo type, got %d lines", len(lines))
	}
	var c types.Custom
	if err := json.Unmarshal([]byte(lines[0]), &c); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(c.TypeName, "~m0") {
		t.Fatalf("mutant not labeled as such: %q", c.TypeName)
	}
}

func TestCensusVerifyResumeRoundTrip(t *testing.T) {
	dir := t.TempDir()
	art := filepath.Join(dir, "ATLAS.json")
	args := []string{
		"census", "-states", "2", "-ops", "2", "-resps", "1",
		"-random", "50", "-mutants", "0", "-seed", "1", "-limit", "2",
		"-out", art,
	}
	var out bytes.Buffer
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "rcons band histogram") {
		t.Fatalf("unexpected census output: %s", out.String())
	}
	a, err := census.Load(art)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Verify(false); err != nil {
		t.Fatal(err)
	}

	// verify subcommand accepts it…
	if err := run([]string{"verify", "-in", art}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	// …and a resumed rerun is byte-identical.
	art2 := filepath.Join(dir, "ATLAS2.json")
	args2 := append(append([]string(nil), args...), "-resume", art)
	args2[len(args)-1] = art2
	if err := run(args2, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	b1, _ := os.ReadFile(art)
	b2, _ := os.ReadFile(art2)
	if !bytes.Equal(b1, b2) {
		t.Fatal("resumed census artifact differs from the original")
	}
}

func TestVerifyRejectsCorruptArtifact(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(path, []byte(`{"version":1,"rows":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"verify", "-in", path}, &bytes.Buffer{}); err == nil {
		t.Fatal("verify accepted an empty artifact")
	}
}

func TestUnknownSubcommand(t *testing.T) {
	if err := run([]string{"frobnicate"}, &bytes.Buffer{}); err == nil {
		t.Fatal("expected an error for an unknown subcommand")
	}
	if err := run(nil, &bytes.Buffer{}); err == nil {
		t.Fatal("expected a usage error for no subcommand")
	}
}

// TestCensusStoreFlag: a store-enabled census persists its rows, a
// rerun on the same directory reuses them, and the artifact stays
// byte-identical — the CLI face of the persistent resume path.
func TestCensusStoreFlag(t *testing.T) {
	dir := t.TempDir()
	storeDir := filepath.Join(dir, "store")
	art1 := filepath.Join(dir, "A1.json")
	art2 := filepath.Join(dir, "A2.json")
	base := []string{
		"census", "-states", "2", "-ops", "2", "-resps", "1",
		"-random", "40", "-mutants", "0", "-seed", "3", "-limit", "2",
		"-store", storeDir,
	}
	if err := run(append(base, "-out", art1), &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(storeDir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := census.Load(art1)
	if err != nil {
		t.Fatal(err)
	}
	if entries := st.Stats().Entries; entries < int64(a.Types) {
		t.Fatalf("store holds %d entries for %d census rows", entries, a.Types)
	}
	if err := run(append(base, "-out", art2), &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	b1, _ := os.ReadFile(art1)
	b2, _ := os.ReadFile(art2)
	if !bytes.Equal(b1, b2) {
		t.Fatal("store-resumed census artifact differs")
	}
}
