package main

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rcons/internal/load"
	"rcons/internal/serve"
)

func testServerURL(t *testing.T, flags ...string) string {
	t.Helper()
	s, err := serve.NewFromFlags(append([]string{"-log-level", "error", "-workers", "2"}, flags...)...)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
	})
	return ts.URL
}

func TestRunJSONOutput(t *testing.T) {
	url := testServerURL(t)
	var out strings.Builder
	code := run(context.Background(), []string{
		"-url", url, "-requests", "40", "-concurrency", "4",
		"-workload", "mixed", "-types", "10", "-batch", "5", "-json",
	}, &out)
	if code != 0 {
		t.Fatalf("rcload exit %d: %s", code, out.String())
	}
	var res load.Result
	if err := json.Unmarshal([]byte(out.String()), &res); err != nil {
		t.Fatalf("non-JSON output: %v\n%s", err, out.String())
	}
	if res.Requests != 40 || res.Errors != 0 || res.Items == 0 {
		t.Fatalf("unexpected result: %+v", res)
	}
}

func TestRunHumanSummary(t *testing.T) {
	url := testServerURL(t)
	var out strings.Builder
	code := run(context.Background(), []string{
		"-url", url, "-requests", "10", "-workload", "single", "-types", "5",
	}, &out)
	if code != 0 {
		t.Fatalf("rcload exit %d: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "throughput") || !strings.Contains(out.String(), "p99") {
		t.Fatalf("summary missing throughput/latency lines:\n%s", out.String())
	}
}

func TestRunCoalesceProbe(t *testing.T) {
	url := testServerURL(t)
	var out strings.Builder
	code := run(context.Background(), []string{"-url", url, "-probe-coalesce", "8"}, &out)
	if code != 0 {
		t.Fatalf("probe exit %d: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "8/8") {
		t.Fatalf("probe summary: %s", out.String())
	}
}

func TestRunBadFlags(t *testing.T) {
	var out strings.Builder
	if code := run(context.Background(), []string{"-workload", "bogus", "-requests", "1"}, &out); code != 1 {
		t.Fatalf("bad workload accepted: exit %d, %s", code, out.String())
	}
	if code := run(context.Background(), []string{"-nope"}, &out); code != 1 {
		t.Fatalf("unknown flag accepted: exit %d", code)
	}
}
