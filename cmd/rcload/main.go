// Command rcload is the SLO harness for rcserve: it drives a mixed
// GET/POST/batch workload (or a single-route one) at a target rate and
// reports throughput plus tail latency (p50/p99/p999) so serving
// regressions show up as numbers, not anecdotes. The same traffic
// engine (internal/load) backs the rcbench serve/* entries and the CI
// smoke job.
//
// Usage:
//
//	rcload -url http://127.0.0.1:8372                  # 5s mixed, human summary
//	rcload -url ... -workload batch -requests 500      # fixed budget
//	rcload -url ... -rps 200 -duration 30s -json       # paced, machine output
//	rcload -url ... -probe-coalesce 16                 # concurrent-identical-GET check
//
// Exit codes: 0 ok, 1 flag/run error, 2 the run saw request errors
// (HTTP failures or unexpected statuses; 429/503 are reported but are
// expected outcomes against a rate-limited server and do not fail).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"rcons/internal/load"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout))
}

func run(ctx context.Context, args []string, stdout io.Writer) int {
	fs := flag.NewFlagSet("rcload", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		url         = fs.String("url", "http://127.0.0.1:8372", "base URL of the rcserve under test")
		duration    = fs.Duration("duration", 5*time.Second, "run length (ignored when -requests is set)")
		requests    = fs.Int("requests", 0, "fixed request budget instead of -duration")
		rps         = fs.Float64("rps", 0, "target request rate across all workers (0 = unpaced)")
		concurrency = fs.Int("concurrency", 8, "worker goroutines")
		workload    = fs.String("workload", "mixed", "request mix: mixed, single or batch")
		batchSize   = fs.Int("batch", 50, "items per batch request")
		typePool    = fs.Int("types", 100, "size of the generated type pool (built-ins + seeded custom tables)")
		limit       = fs.Int("limit", 3, "classification limit parameter")
		seed        = fs.Int64("seed", 1, "seed for the type pool and request sequence")
		jsonOut     = fs.Bool("json", false, "emit the result as JSON instead of a human summary")
		trace       = fs.Bool("trace", false, "stamp each request with a client-minted X-RC-Trace ID and report the slowest requests' trace IDs")
		probe       = fs.Int("probe-coalesce", 0, "instead of a load run, fire N concurrent identical GETs at /v1/zoo and verify byte-identical bodies")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}

	if *probe > 0 {
		probeURL := *url + "/v1/zoo?limit=" + strconv.Itoa(*limit)
		okBodies, err := load.CoalesceProbe(ctx, nil, probeURL, *probe)
		if err != nil {
			fmt.Fprintf(stdout, "rcload: coalesce probe: %v (%d/%d ok)\n", err, okBodies, *probe)
			return 2
		}
		fmt.Fprintf(stdout, "coalesce probe: %d/%d concurrent GETs of %s returned byte-identical bodies\n",
			okBodies, *probe, probeURL)
		return 0
	}

	res, err := load.Run(ctx, load.Options{
		BaseURL:     *url,
		Duration:    *duration,
		Requests:    *requests,
		RPS:         *rps,
		Concurrency: *concurrency,
		Workload:    *workload,
		BatchSize:   *batchSize,
		Types:       *typePool,
		Limit:       *limit,
		Seed:        *seed,
		Trace:       *trace,
	})
	if err != nil {
		fmt.Fprintf(stdout, "rcload: %v\n", err)
		return 1
	}

	if *jsonOut {
		if err := writeJSON(stdout, res); err != nil {
			fmt.Fprintf(stdout, "rcload: %v\n", err)
			return 1
		}
	} else {
		fmt.Fprintf(stdout, "workload %-6s  %6.2fs  %d requests (%d errors, %d limited, %d shed)\n",
			res.Workload, res.Duration, res.Requests, res.Errors, res.Limited, res.Shed)
		fmt.Fprintf(stdout, "  throughput  %10.1f req/s  %10.1f items/s\n", res.Throughput, res.ItemsPerSec)
		fmt.Fprintf(stdout, "  latency     p50 %s  p99 %s  p999 %s\n",
			fmtSecs(res.P50), fmtSecs(res.P99), fmtSecs(res.P999))
		for i, wt := range res.Worst {
			if i == 0 {
				fmt.Fprintf(stdout, "  slowest traces (GET /debug/requests/{trace} on the server):\n")
			}
			fmt.Fprintf(stdout, "    %-20s %s\n", wt.Trace, fmtSecs(wt.Seconds))
		}
	}
	if res.Errors > 0 {
		fmt.Fprintf(stdout, "rcload: %d request errors\n", res.Errors)
		return 2
	}
	return 0
}

func fmtSecs(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(10 * time.Microsecond).String()
}

func writeJSON(w io.Writer, res *load.Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}
