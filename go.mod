module rcons

go 1.24
