package rcons_test

import (
	"fmt"

	"rcons"
	"rcons/internal/harness"
)

// ExampleClassify places the paper's S_3 family member (Figure 6) in the
// recoverable consensus hierarchy.
func ExampleClassify() {
	t, _ := rcons.TypeByName("S_3")
	c, _ := rcons.Classify(t, 6)
	fmt.Printf("cons(S_3) = %s, rcons(S_3) = %s\n", c.ConsBand(), c.RconsBand())
	// Output:
	// cons(S_3) = 3, rcons(S_3) = 3
}

// ExampleClassify_gap shows the paper's headline separation: T_4 solves
// 4-process consensus but cannot solve 4-process recoverable consensus.
func ExampleClassify_gap() {
	t, _ := rcons.TypeByName("T_4")
	c, _ := rcons.Classify(t, 6)
	fmt.Printf("cons(T_4) = %s, rcons(T_4) = %s\n", c.ConsBand(), c.RconsBand())
	// Output:
	// cons(T_4) = 4, rcons(T_4) = 2–3
}

// ExampleSearchRecording finds a Definition 4 witness mechanically.
func ExampleSearchRecording() {
	t, _ := rcons.TypeByName("S_2")
	w, _ := rcons.SearchRecording(t, 2)
	fmt.Println(w)
	// Output:
	// q0=B,0 A={0:opA} B={1:opB}
}

// ExampleRunRC solves recoverable consensus among three crash-prone
// processes using only S_3 objects and registers — the paper's Theorem 8
// plus Appendix B, executed.
func ExampleRunRC() {
	t, _ := rcons.TypeByName("S_3")
	tournament, _ := rcons.NewTournament(t, harness.SnPaperWitness(3), 3, "ex")
	out, err := rcons.RunRC(tournament, []rcons.Value{"a", "b", "c"}, rcons.Config{
		Seed: 1, CrashProb: 0.3, MaxCrashes: 6,
	})
	if err != nil {
		fmt.Println("violation:", err)
		return
	}
	agreed := out.Decisions[0] == out.Decisions[1] && out.Decisions[1] == out.Decisions[2]
	fmt.Printf("all agreed: %v\n", agreed)
	// Output:
	// all agreed: true
}

// ExampleReadable shows why Appendix H's stack needs a different
// argument: the plain stack is not readable, so Theorem 8 cannot apply.
func ExampleReadable() {
	st, _ := rcons.TypeByName("stack")
	rs, _ := rcons.TypeByName("readable-stack")
	fmt.Println(rcons.Readable(st), rcons.Readable(rs))
	// Output:
	// false true
}
